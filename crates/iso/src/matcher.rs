//! The backtracking subgraph-isomorphism matcher.

use crate::order::visit_order;
use gpar_graph::{FxHashMap, FxHashSet, Graph, Label, NodeId, Sketch, SketchIndex};
use gpar_pattern::{pattern_sketch, EdgeCond, NodeCond, PNodeId, Pattern};
use std::cell::RefCell;
use std::ops::ControlFlow;

/// Which search strategy to use. See the crate docs for the mapping to the
/// paper's algorithm names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// VF2-style: connectivity-driven order, most-constrained-first
    /// tie-break, candidates in adjacency order.
    Vf2,
    /// Static degree-based variable order (the vertex-relationship
    /// heuristic in the spirit of Ren & Wang [38]; the paper's `Matchs`).
    DegreeOrdered,
    /// Guided search (§5.2): k-hop-sketch candidate *pruning* plus
    /// best-surplus-first candidate ordering with backtracking.
    Guided,
}

/// Matcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct MatcherConfig {
    /// Search strategy.
    pub kind: EngineKind,
    /// Sketch depth `k` for [`EngineKind::Guided`].
    pub sketch_k: u32,
    /// Whether guided search prunes candidates whose sketch cannot cover
    /// the pattern's sketch (`D_i − D'_i < 0` ⇒ mismatch).
    pub sketch_prune: bool,
    /// Minimum branching factor before guided search scores/sorts
    /// candidates by sketch surplus. Scoring every tiny candidate list
    /// costs more than it saves; the anchor-level prefilter still applies
    /// regardless.
    pub guided_min_branch: usize,
}

impl MatcherConfig {
    /// Baseline VF2 configuration.
    pub fn vf2() -> Self {
        Self { kind: EngineKind::Vf2, sketch_k: 0, sketch_prune: false, guided_min_branch: 0 }
    }

    /// Degree-ordered configuration (the paper's `Matchs` flavor).
    pub fn degree_ordered() -> Self {
        Self {
            kind: EngineKind::DegreeOrdered,
            sketch_k: 0,
            sketch_prune: false,
            guided_min_branch: 0,
        }
    }

    /// Guided-search configuration with 2-hop sketches (the paper's
    /// default; Example 10 uses `k = 2`).
    pub fn guided() -> Self {
        Self { kind: EngineKind::Guided, sketch_k: 2, sketch_prune: true, guided_min_branch: 24 }
    }
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self::vf2()
    }
}

/// A shareable cache of pattern-side sketches, keyed by a structural
/// fingerprint of the pattern. Pattern sketches do not depend on the data
/// graph, so callers evaluating many small graphs (one per candidate
/// site, as EIP does) should create one cache per thread and share it
/// across matchers via [`Matcher::with_shared_pattern_cache`].
pub type PatternSketchCache = std::rc::Rc<RefCell<FxHashMap<Vec<u64>, std::rc::Rc<Vec<Sketch>>>>>;

/// A reusable matcher bound to one data graph.
///
/// The matcher owns a lazily filled cache of data-node sketches for guided
/// search; create one matcher per fragment/thread and reuse it across
/// candidates and rules to amortize sketch construction (matching the
/// paper's precomputed `K(v)`).
pub struct Matcher<'g> {
    g: &'g Graph,
    cfg: MatcherConfig,
    precomputed: Option<&'g SketchIndex>,
    cache: RefCell<FxHashMap<NodeId, Sketch>>,
    pattern_cache: PatternSketchCache,
}

impl<'g> Matcher<'g> {
    /// Creates a matcher over `g`.
    pub fn new(g: &'g Graph, cfg: MatcherConfig) -> Self {
        Self {
            g,
            cfg,
            precomputed: None,
            cache: RefCell::new(FxHashMap::default()),
            pattern_cache: PatternSketchCache::default(),
        }
    }

    /// Creates a matcher that consults a precomputed sketch index before
    /// falling back to on-demand sketch construction.
    pub fn with_sketches(g: &'g Graph, cfg: MatcherConfig, idx: &'g SketchIndex) -> Self {
        Self {
            g,
            cfg,
            precomputed: Some(idx),
            cache: RefCell::new(FxHashMap::default()),
            pattern_cache: PatternSketchCache::default(),
        }
    }

    /// Replaces the pattern-sketch cache with a shared one (see
    /// [`PatternSketchCache`]).
    pub fn with_shared_pattern_cache(mut self, cache: PatternSketchCache) -> Self {
        self.pattern_cache = cache;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The configuration in force.
    pub fn config(&self) -> MatcherConfig {
        self.cfg
    }

    /// All data nodes satisfying the condition of pattern node `u`.
    pub fn candidates(&self, p: &Pattern, u: PNodeId) -> Vec<NodeId> {
        match p.cond(u) {
            NodeCond::Label(l) => self.g.nodes_with_label(l).collect(),
            NodeCond::Any => self.g.nodes().collect(),
        }
    }

    /// Whether at least one match maps `u ↦ v` (early termination at the
    /// first witness — the `Match` optimization of §5.2).
    pub fn exists_anchored(&self, p: &Pattern, u: PNodeId, v: NodeId) -> bool {
        let mut found = false;
        self.run_anchored(p, u, v, &mut |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }

    /// Enumerates every match mapping `u ↦ v`. The callback receives the
    /// complete assignment (indexed by pattern node) and may stop the
    /// enumeration by returning [`ControlFlow::Break`].
    pub fn enumerate_anchored(
        &self,
        p: &Pattern,
        u: PNodeId,
        v: NodeId,
        cb: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) {
        self.run_anchored(p, u, v, cb);
    }

    /// Counts matches mapping `u ↦ v`, up to an optional cap (full
    /// enumeration, as the `Matchc`/`disVF2` baselines perform).
    pub fn count_anchored(&self, p: &Pattern, u: PNodeId, v: NodeId, cap: Option<u64>) -> u64 {
        let mut n = 0u64;
        self.run_anchored(p, u, v, &mut |_| {
            n += 1;
            match cap {
                Some(c) if n >= c => ControlFlow::Break(()),
                _ => ControlFlow::Continue(()),
            }
        });
        n
    }

    /// `Q(u, G)`: the distinct images of pattern node `u` across all
    /// matches, computed with early termination per candidate.
    pub fn images(&self, p: &Pattern, u: PNodeId) -> FxHashSet<NodeId> {
        self.images_among(p, u, self.candidates(p, u).into_iter())
    }

    /// As [`Matcher::images`] but restricted to the given candidates.
    pub fn images_among(
        &self,
        p: &Pattern,
        u: PNodeId,
        candidates: impl Iterator<Item = NodeId>,
    ) -> FxHashSet<NodeId> {
        candidates.filter(|&v| self.exists_anchored(p, u, v)).collect()
    }

    /// `Q(u, G)` computed by *full enumeration per candidate* — the cost
    /// profile of the `disVF2` baseline, which enumerates all isomorphic
    /// matches instead of stopping at the first.
    pub fn images_by_full_enumeration(&self, p: &Pattern, u: PNodeId) -> FxHashSet<NodeId> {
        let mut out = FxHashSet::default();
        for v in self.candidates(p, u) {
            if self.count_anchored(p, u, v, None) > 0 {
                out.insert(v);
            }
        }
        out
    }

    /// Counts all matches of `p` in the graph (`‖Q(G)‖`), up to `cap`.
    pub fn count_matches(&self, p: &Pattern, cap: Option<u64>) -> u64 {
        let mut n = 0u64;
        for v in self.candidates(p, p.x()) {
            n += self.count_anchored(p, p.x(), v, cap.map(|c| c.saturating_sub(n)));
            if let Some(c) = cap {
                if n >= c {
                    return c;
                }
            }
        }
        n
    }

    /// Enumerates all matches of `p` (anchorless).
    pub fn enumerate(&self, p: &Pattern, cb: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>) {
        for v in self.candidates(p, p.x()) {
            let mut stop = false;
            self.run_anchored(p, p.x(), v, &mut |m| {
                let flow = cb(m);
                if flow.is_break() {
                    stop = true;
                }
                flow
            });
            if stop {
                return;
            }
        }
    }

    fn run_anchored(
        &self,
        p: &Pattern,
        u: PNodeId,
        v: NodeId,
        cb: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) {
        if !self.node_feasible(p, u, v) {
            return;
        }
        // The anchor is assigned without going through `assign_feasible`,
        // so its self-loop edges must be verified here.
        for &(dst, cond) in p.out(u) {
            if dst == u && !self.edge_exists(v, v, cond) {
                return;
            }
        }
        // Degree-first static orders help both the degree-ordered engine
        // and guided search (sketch ranking then refines within a step).
        let order = visit_order(p, u, self.cfg.kind != EngineKind::Vf2);
        let psketches =
            if self.cfg.kind == EngineKind::Guided { Some(self.pattern_sketches(p)) } else { None };
        if let Some(ps) = &psketches {
            if self.cfg.sketch_prune && !self.data_sketch_covers(v, &ps[u.index()]) {
                return;
            }
        }
        let mut st = SearchState {
            map: vec![None; p.node_count()],
            used: FxHashSet::default(),
            buf: Vec::new(),
        };
        st.assign(u, v);
        let psk: Option<&[Sketch]> = psketches.as_ref().map(|r| r.as_slice());
        let _ = self.go(p, &order, 1, &mut st, psk, cb);
    }

    /// Cached per-pattern-node sketches, keyed by a structural fingerprint
    /// of the pattern (conditions + edges), so equal patterns share one
    /// entry regardless of allocation identity.
    fn pattern_sketches(&self, p: &Pattern) -> std::rc::Rc<Vec<Sketch>> {
        let mut key: Vec<u64> = Vec::with_capacity(2 + p.node_count() + 3 * p.edge_count());
        key.push(self.cfg.sketch_k as u64);
        for u in p.nodes() {
            key.push(match p.cond(u) {
                NodeCond::Label(l) => l.0 as u64,
                NodeCond::Any => u64::MAX,
            });
        }
        key.push(u64::MAX - 1);
        for e in p.edges() {
            key.push(e.src.0 as u64);
            key.push(e.dst.0 as u64);
            key.push(match e.cond {
                EdgeCond::Label(l) => l.0 as u64,
                EdgeCond::Any => u64::MAX,
            });
        }
        if let Some(hit) = self.pattern_cache.borrow().get(&key) {
            return hit.clone();
        }
        let built = std::rc::Rc::new(
            p.nodes().map(|pu| pattern_sketch(p, pu, self.cfg.sketch_k)).collect::<Vec<_>>(),
        );
        self.pattern_cache.borrow_mut().insert(key, built.clone());
        built
    }

    fn go(
        &self,
        p: &Pattern,
        order: &[PNodeId],
        pos: usize,
        st: &mut SearchState,
        psk: Option<&[Sketch]>,
        cb: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if pos == order.len() {
            st.buf.clear();
            st.buf.extend(st.map.iter().map(|m| m.unwrap()));
            let full = std::mem::take(&mut st.buf);
            let flow = cb(&full);
            st.buf = full;
            return flow;
        }
        let u = order[pos];
        let candidates = self.gen_candidates(p, u, st);
        let candidates = self.rank_candidates(candidates, u, psk);
        for v in candidates {
            if !self.assign_feasible(p, u, v, st, psk) {
                continue;
            }
            st.assign(u, v);
            let flow = self.go(p, order, pos + 1, st, psk, cb);
            st.unassign(u, v);
            flow?;
        }
        ControlFlow::Continue(())
    }

    /// Generates candidate data nodes for pattern node `u`, preferring the
    /// mapped pattern neighbor whose label-filtered adjacency is smallest.
    fn gen_candidates(&self, p: &Pattern, u: PNodeId, st: &SearchState) -> Vec<NodeId> {
        let mut best: Option<Vec<NodeId>> = None;
        let mut consider = |list: Vec<NodeId>| {
            if best.as_ref().is_none_or(|b| list.len() < b.len()) {
                best = Some(list);
            }
        };
        for &(dst, cond) in p.out(u) {
            if let Some(m) = st.map[dst.index()] {
                consider(self.adjacent(m, cond, /*incoming_of_m=*/ true));
            }
        }
        for &(src, cond) in p.inn(u) {
            if let Some(m) = st.map[src.index()] {
                consider(self.adjacent(m, cond, /*incoming_of_m=*/ false));
            }
        }
        match best {
            Some(list) => list,
            // No mapped neighbor: full label scan (disconnected component
            // start). Correct but linear in |V|.
            None => self.candidates(p, u),
        }
    }

    /// Neighbors of data node `m` along edges satisfying `cond`;
    /// `incoming_of_m` selects which side of the pattern edge `m` plays.
    fn adjacent(&self, m: NodeId, cond: EdgeCond, incoming_of_m: bool) -> Vec<NodeId> {
        let slice = match (cond, incoming_of_m) {
            (EdgeCond::Label(l), true) => self.g.in_edges_labeled(m, l),
            (EdgeCond::Label(l), false) => self.g.out_edges_labeled(m, l),
            (EdgeCond::Any, true) => self.g.in_edges(m),
            (EdgeCond::Any, false) => self.g.out_edges(m),
        };
        slice.iter().map(|e| e.node).collect()
    }

    fn rank_candidates(
        &self,
        mut cands: Vec<NodeId>,
        u: PNodeId,
        psk: Option<&[Sketch]>,
    ) -> Vec<NodeId> {
        let Some(psk) = psk else { return cands };
        if cands.len() < self.cfg.guided_min_branch.max(2) {
            return cands;
        }
        let ps = &psk[u.index()];
        let mut scored: Vec<(i64, NodeId)> = Vec::with_capacity(cands.len());
        for v in cands.drain(..) {
            match self.data_sketch_surplus(v, ps) {
                Some(s) => scored.push((s, v)),
                None if self.cfg.sketch_prune => {} // mismatch ⇒ prune
                None => scored.push((i64::MIN, v)),
            }
        }
        // Best (largest surplus) first — the paper's f(u', v') ranking.
        scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, v)| v).collect()
    }

    fn node_feasible(&self, p: &Pattern, u: PNodeId, v: NodeId) -> bool {
        p.cond(u).matches(self.g.node_label(v))
            && p.out(u).len() <= self.g.out_degree(v)
            && p.inn(u).len() <= self.g.in_degree(v)
    }

    fn assign_feasible(
        &self,
        p: &Pattern,
        u: PNodeId,
        v: NodeId,
        st: &SearchState,
        psk: Option<&[Sketch]>,
    ) -> bool {
        if st.used.contains(&v) || !self.node_feasible(p, u, v) {
            return false;
        }
        // Self-loop pattern edges (dst == u) must be checked against v
        // itself: u is not yet in the partial map at this point.
        for &(dst, cond) in p.out(u) {
            let target = if dst == u { Some(v) } else { st.map[dst.index()] };
            if let Some(m) = target {
                if !self.edge_exists(v, m, cond) {
                    return false;
                }
            }
        }
        for &(src, cond) in p.inn(u) {
            if src == u {
                continue; // self-loop already verified above
            }
            if let Some(m) = st.map[src.index()] {
                if !self.edge_exists(m, v, cond) {
                    return false;
                }
            }
        }
        // Sketch-based pruning happens in `rank_candidates` (above the
        // configured branching threshold); re-checking each assignment
        // here costs more than the structural checks it could save.
        let _ = psk;
        true
    }

    fn edge_exists(&self, s: NodeId, d: NodeId, cond: EdgeCond) -> bool {
        match cond {
            EdgeCond::Label(l) => self.g.has_edge(s, d, l),
            EdgeCond::Any => self.g.out_edges(s).iter().any(|e| e.node == d),
        }
    }

    fn with_data_sketch<R>(&self, v: NodeId, f: impl FnOnce(&Sketch) -> R) -> R {
        if let Some(idx) = self.precomputed {
            if let Some(s) = idx.get(v) {
                return f(s);
            }
        }
        if let Some(s) = self.cache.borrow().get(&v) {
            return f(s);
        }
        let s = Sketch::build(self.g, v, self.cfg.sketch_k);
        let r = f(&s);
        self.cache.borrow_mut().insert(v, s);
        r
    }

    fn data_sketch_covers(&self, v: NodeId, ps: &Sketch) -> bool {
        self.with_data_sketch(v, |ds| ds.covers(ps))
    }

    fn data_sketch_surplus(&self, v: NodeId, ps: &Sketch) -> Option<i64> {
        self.with_data_sketch(v, |ds| ds.surplus(ps))
    }
}

struct SearchState {
    map: Vec<Option<NodeId>>,
    used: FxHashSet<NodeId>,
    buf: Vec<NodeId>,
}

impl SearchState {
    fn assign(&mut self, u: PNodeId, v: NodeId) {
        self.map[u.index()] = Some(v);
        self.used.insert(v);
    }

    fn unassign(&mut self, u: PNodeId, v: NodeId) {
        self.map[u.index()] = None;
        self.used.remove(&v);
    }
}

/// A `Label` helper re-export for downstream test utilities.
pub type LabelAlias = Label;

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::PatternBuilder;
    use std::sync::Arc;

    /// Builds the paper's graph `G1` (Fig. 2): a restaurant recommendation
    /// network. Returns (graph, custs, le_bernardin).
    pub(crate) fn build_g1() -> (Graph, Vec<NodeId>, NodeId) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let city = vocab.intern("city");
        let fr = vocab.intern("french_restaurant");
        let asian = vocab.intern("asian_restaurant");
        let (live_in, friend, like, inn, visit) = (
            vocab.intern("live_in"),
            vocab.intern("friend"),
            vocab.intern("like"),
            vocab.intern("in"),
            vocab.intern("visit"),
        );
        let mut b = GraphBuilder::new(vocab);
        let custs: Vec<NodeId> = (0..6).map(|_| b.add_node(cust)).collect();
        let ny = b.add_node(city);
        let la = b.add_node(city);
        let le_bernardin = b.add_node(fr);
        let perse = b.add_node(fr);
        let patina = b.add_node(fr);
        // Three groups of 3 shared French restaurants (the "FR^3" nodes).
        let fr3_ny1: Vec<NodeId> = (0..3).map(|_| b.add_node(fr)).collect();
        let fr3_ny2: Vec<NodeId> = (0..3).map(|_| b.add_node(fr)).collect();
        let fr3_la: Vec<NodeId> = (0..3).map(|_| b.add_node(fr)).collect();
        let asian1 = b.add_node(asian);
        let asian2 = b.add_node(asian);

        // cust1, cust2 in New York; friends; share 3 FRs; both visit
        // Le Bernardin.
        b.add_edge(custs[0], ny, live_in);
        b.add_edge(custs[1], ny, live_in);
        b.add_edge(custs[0], custs[1], friend);
        b.add_edge(custs[1], custs[0], friend);
        for &r in &fr3_ny1 {
            b.add_edge(custs[0], r, like);
            b.add_edge(custs[1], r, like);
            b.add_edge(r, ny, inn);
        }
        b.add_edge(custs[0], le_bernardin, visit);
        b.add_edge(custs[1], le_bernardin, visit);
        b.add_edge(le_bernardin, ny, inn);

        // cust2 & cust3 friends; cust3 in NY, shares 3 FRs with cust2,
        // visits Le Bernardin too.
        b.add_edge(custs[2], ny, live_in);
        b.add_edge(custs[1], custs[2], friend);
        b.add_edge(custs[2], custs[1], friend);
        for &r in &fr3_ny2 {
            b.add_edge(custs[1], r, like);
            b.add_edge(custs[2], r, like);
            b.add_edge(r, ny, inn);
        }
        b.add_edge(custs[2], le_bernardin, visit);

        // cust4 in LA, visits Per se (a FR) — a match of q but not of Q1.
        b.add_edge(custs[3], la, live_in);
        b.add_edge(custs[3], perse, visit);
        b.add_edge(perse, la, inn);
        b.add_edge(patina, la, inn);

        // cust5 & cust6 in LA, friends, share 3 FRs; cust5 visits an Asian
        // restaurant only (the q̄ witness); cust6 visits a FR (Patina).
        b.add_edge(custs[4], la, live_in);
        b.add_edge(custs[5], la, live_in);
        b.add_edge(custs[4], custs[5], friend);
        b.add_edge(custs[5], custs[4], friend);
        for &r in &fr3_la {
            b.add_edge(custs[4], r, like);
            b.add_edge(custs[5], r, like);
            b.add_edge(r, la, inn);
        }
        b.add_edge(custs[4], asian1, visit);
        b.add_edge(asian1, la, inn);
        b.add_edge(custs[5], patina, visit);
        b.add_edge(custs[5], asian2, like);
        b.add_edge(asian2, la, inn);

        (b.build(), custs, le_bernardin)
    }

    /// The antecedent Q1 of Example 1 (with 3 restaurant copies).
    pub(crate) fn build_q1(vocab: &Arc<Vocab>) -> Pattern {
        let cust = vocab.intern("cust");
        let city = vocab.intern("city");
        let fr = vocab.intern("french_restaurant");
        let (live_in, friend, like, inn, visit) = (
            vocab.intern("live_in"),
            vocab.intern("friend"),
            vocab.intern("like"),
            vocab.intern("in"),
            vocab.intern("visit"),
        );
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let x2 = b.node(cust);
        let c = b.node(city);
        let y = b.node(fr);
        let rests = b.node_copies(fr, 3);
        b.edge(x, x2, friend);
        b.edge(x2, x, friend);
        b.edge(x, c, live_in);
        b.edge(x2, c, live_in);
        b.edge_to_copies(x, &rests, like);
        b.edge_to_copies(x2, &rests, like);
        b.edge_from_copies(&rests, c, inn);
        b.edge(y, c, inn);
        b.edge(x2, y, visit);
        b.designate(x, y).build().unwrap()
    }

    fn all_engines() -> Vec<MatcherConfig> {
        vec![MatcherConfig::vf2(), MatcherConfig::degree_ordered(), MatcherConfig::guided()]
    }

    #[test]
    fn example_3_q1_images_are_cust_1_2_3_5() {
        let (g, custs, _) = build_g1();
        let q1 = build_q1(g.vocab());
        for cfg in all_engines() {
            let m = Matcher::new(&g, cfg);
            let imgs = m.images(&q1, q1.x());
            let expect: FxHashSet<NodeId> =
                [custs[0], custs[1], custs[2], custs[4]].into_iter().collect();
            assert_eq!(imgs, expect, "engine {:?}", cfg.kind);
        }
    }

    #[test]
    fn full_enumeration_agrees_with_early_termination() {
        let (g, _, _) = build_g1();
        let q1 = build_q1(g.vocab());
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert_eq!(m.images(&q1, q1.x()), m.images_by_full_enumeration(&q1, q1.x()));
    }

    #[test]
    fn anchored_existence_and_counting() {
        let (g, custs, lb) = build_g1();
        let q1 = build_q1(g.vocab());
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&q1, q1.x(), custs[0]));
        assert!(!m.exists_anchored(&q1, q1.x(), custs[3]));
        // The designated y: cust1's matches put Le Bernardin at y.
        let y = q1.y().unwrap();
        let mut saw_lb = false;
        m.enumerate_anchored(&q1, q1.x(), custs[0], &mut |mm| {
            if mm[y.index()] == lb {
                saw_lb = true;
            }
            ControlFlow::Continue(())
        });
        assert!(saw_lb);
        // Copies are interchangeable: 3! orderings of the FR^3 nodes.
        assert_eq!(m.count_anchored(&q1, q1.x(), custs[0], None) % 6, 0);
        // Cap is honored.
        assert_eq!(m.count_anchored(&q1, q1.x(), custs[0], Some(2)), 2);
    }

    #[test]
    fn injectivity_is_enforced() {
        // Pattern wants two distinct restaurants; data has one.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let r = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut gb = GraphBuilder::new(vocab.clone());
        let c = gb.add_node(cust);
        let r0 = gb.add_node(r);
        gb.add_edge(c, r0, like);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let rs = pb.node_copies(r, 2);
        pb.edge_to_copies(x, &rs, like);
        let p = pb.designate_x(x).build().unwrap();
        for cfg in all_engines() {
            let m = Matcher::new(&g, cfg);
            assert!(!m.exists_anchored(&p, x, c), "engine {:?}", cfg.kind);
        }
    }

    #[test]
    fn matches_are_not_induced() {
        // Data has an *extra* edge between matched nodes; the pattern still
        // matches (non-induced semantics).
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let extra = vocab.intern("extra");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let c = gb.add_node(n);
        gb.add_edge(a, c, e);
        gb.add_edge(c, a, extra);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let pa = pb.node(n);
        let pc = pb.node(n);
        pb.edge(pa, pc, e);
        let p = pb.designate_x(pa).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&p, pa, a));
    }

    #[test]
    fn wildcard_pattern_edges_match_any_label() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("weird");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let c = gb.add_node(n);
        gb.add_edge(a, c, e);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let pa = pb.node(n);
        let pc = pb.node_any();
        pb.edge_any(pa, pc);
        let p = pb.designate_x(pa).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&p, pa, a));
        assert!(!m.exists_anchored(&p, pa, c)); // c has no out-edge
    }

    #[test]
    fn disconnected_pattern_components_are_matched() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let k = vocab.intern("k");
        let e = vocab.intern("e");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let c = gb.add_node(n);
        let other = gb.add_node(k);
        gb.add_edge(a, c, e);
        let g = gb.build();
        // Pattern: edge n->n plus an isolated k node.
        let mut pb = PatternBuilder::new(vocab.clone());
        let pa = pb.node(n);
        let pc = pb.node(n);
        let pk = pb.node(k);
        pb.edge(pa, pc, e);
        let p = pb.designate_x(pa).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&p, pa, a));
        let y_imgs = m.images(&p, pk);
        assert!(y_imgs.contains(&other));
        // Remove the k node from data: no match anymore.
        let mut gb = GraphBuilder::new(vocab);
        let a2 = gb.add_node(n);
        let c2 = gb.add_node(n);
        gb.add_edge(a2, c2, e);
        let g2 = gb.build();
        let m2 = Matcher::new(&g2, MatcherConfig::vf2());
        assert!(!m2.exists_anchored(&p, pa, a2));
    }

    #[test]
    fn count_matches_counts_all_assignments() {
        // x -like-> r with 2 custs each liking 2 rests: 4 matches.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let r = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut gb = GraphBuilder::new(vocab.clone());
        for _ in 0..2 {
            let c = gb.add_node(cust);
            for _ in 0..2 {
                let rr = gb.add_node(r);
                gb.add_edge(c, rr, like);
            }
        }
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(r);
        pb.edge(x, y, like);
        let p = pb.designate(x, y).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert_eq!(m.count_matches(&p, None), 4);
        assert_eq!(m.count_matches(&p, Some(3)), 3);
    }

    #[test]
    fn self_loop_patterns() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let c = gb.add_node(n);
        gb.add_edge(a, a, e);
        gb.add_edge(c, a, e);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(n);
        pb.edge(x, x, e);
        let p = pb.designate_x(x).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&p, x, a));
        assert!(!m.exists_anchored(&p, x, c));
    }

    #[test]
    fn guided_respects_precomputed_sketches() {
        let (g, custs, _) = build_g1();
        let q1 = build_q1(g.vocab());
        let idx = SketchIndex::build_all(&g, 2);
        let m = Matcher::with_sketches(&g, MatcherConfig::guided(), &idx);
        let imgs = m.images(&q1, q1.x());
        assert!(imgs.contains(&custs[0]));
        assert!(!imgs.contains(&custs[3]));
    }
}
