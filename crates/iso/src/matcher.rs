//! The backtracking subgraph-isomorphism matcher.
//!
//! ## Hot-path design
//!
//! The per-step search loop ([`Matcher::go`] → `gen_candidates_into`) is
//! allocation-free on the steady-state path: all search state lives in a
//! reusable [`ScratchArena`] (shareable across matchers on one thread via
//! [`SharedScratch`]), candidate lists are segments of one shared stack,
//! and candidate generation runs a *smallest-run* sorted intersection
//! over the graph's `(label, endpoint)`-sorted CSR adjacency slices: the
//! mapped pattern neighbor with the smallest label-filtered run seeds the
//! segment, every other labeled constraint is merged in with a two-pointer
//! pass, and only wildcard constraints plus node conditions remain as
//! per-candidate probes. Candidates that survive are *fully verified* —
//! the assignment loop only re-checks injectivity.
//!
//! The previous generate-then-filter pipeline (smallest adjacency list
//! copied out, then per-candidate edge probes at assignment time) is kept
//! behind [`MatcherConfig::legacy_filter_gen`] as a differential-testing
//! oracle.

use crate::order::visit_order_into as visit_order;
use crate::scratch::{ScratchArena, SharedScratch};
use gpar_graph::{
    Edge, FxHashMap, FxHashSet, Graph, Label, NeighborhoodScratch, NodeId, Sketch, SketchIndex,
};
use gpar_pattern::{pattern_sketch, EdgeCond, NodeCond, PNodeId, Pattern};
use std::cell::RefCell;
use std::ops::ControlFlow;

/// Which search strategy to use. See the crate docs for the mapping to the
/// paper's algorithm names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// VF2-style: connectivity-driven order, most-constrained-first
    /// tie-break, candidates in adjacency order.
    Vf2,
    /// Static degree-based variable order (the vertex-relationship
    /// heuristic in the spirit of Ren & Wang [38]; the paper's `Matchs`).
    DegreeOrdered,
    /// Guided search (§5.2): k-hop-sketch candidate *pruning* plus
    /// best-surplus-first candidate ordering with backtracking.
    Guided,
}

/// Matcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct MatcherConfig {
    /// Search strategy.
    pub kind: EngineKind,
    /// Sketch depth `k` for [`EngineKind::Guided`].
    pub sketch_k: u32,
    /// Whether guided search prunes candidates whose sketch cannot cover
    /// the pattern's sketch (`D_i − D'_i < 0` ⇒ mismatch).
    pub sketch_prune: bool,
    /// Minimum branching factor before guided search scores/sorts
    /// candidates by sketch surplus. Scoring every tiny candidate list
    /// costs more than it saves; the anchor-level prefilter still applies
    /// regardless.
    pub guided_min_branch: usize,
    /// Use the pre-intersection generate-then-filter candidate pipeline.
    /// Slower (kept out of the steady-state path); exists so differential
    /// tests can pit the intersection-based generator against the
    /// original implementation on identical searches.
    pub legacy_filter_gen: bool,
}

impl MatcherConfig {
    /// Baseline VF2 configuration.
    pub fn vf2() -> Self {
        Self {
            kind: EngineKind::Vf2,
            sketch_k: 0,
            sketch_prune: false,
            guided_min_branch: 0,
            legacy_filter_gen: false,
        }
    }

    /// Degree-ordered configuration (the paper's `Matchs` flavor).
    pub fn degree_ordered() -> Self {
        Self {
            kind: EngineKind::DegreeOrdered,
            sketch_k: 0,
            sketch_prune: false,
            guided_min_branch: 0,
            legacy_filter_gen: false,
        }
    }

    /// Guided-search configuration with 2-hop sketches (the paper's
    /// default; Example 10 uses `k = 2`).
    pub fn guided() -> Self {
        Self {
            kind: EngineKind::Guided,
            sketch_k: 2,
            sketch_prune: true,
            guided_min_branch: 24,
            legacy_filter_gen: false,
        }
    }

    /// This configuration with the legacy generate-then-filter candidate
    /// pipeline (differential-testing oracle).
    pub fn with_legacy_gen(mut self) -> Self {
        self.legacy_filter_gen = true;
        self
    }
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self::vf2()
    }
}

/// A shareable cache of pattern-side sketches, keyed by a structural
/// fingerprint of the pattern. Pattern sketches do not depend on the data
/// graph, so callers evaluating many small graphs (one per candidate
/// site, as EIP does) should create one cache per thread and share it
/// across matchers via [`Matcher::with_shared_pattern_cache`].
pub type PatternSketchCache = std::rc::Rc<RefCell<FxHashMap<Vec<u64>, std::rc::Rc<Vec<Sketch>>>>>;

/// A reusable matcher bound to one data graph.
///
/// The matcher owns a lazily filled cache of data-node sketches for guided
/// search; create one matcher per fragment/thread and reuse it across
/// candidates and rules to amortize sketch construction (matching the
/// paper's precomputed `K(v)`). Workloads that rebuild matchers per site
/// graph should additionally share one [`SharedScratch`] per thread via
/// [`Matcher::with_scratch`] so search buffers survive the rebuilds.
pub struct Matcher<'g> {
    g: &'g Graph,
    cfg: MatcherConfig,
    precomputed: Option<&'g SketchIndex>,
    cache: RefCell<FxHashMap<NodeId, Sketch>>,
    /// Lazily created so matchers that never run guided search (or that
    /// get a shared cache) allocate nothing here.
    pattern_cache: RefCell<Option<PatternSketchCache>>,
    /// Shared arena handle, if the caller provided one.
    scratch: Option<SharedScratch>,
    /// Fallback arena for unshared matchers, built on first search.
    own_arena: RefCell<Option<Box<ScratchArena>>>,
}

impl<'g> Matcher<'g> {
    /// Creates a matcher over `g`. Construction is allocation-free; all
    /// caches and search state are built lazily or supplied shared.
    pub fn new(g: &'g Graph, cfg: MatcherConfig) -> Self {
        Self {
            g,
            cfg,
            precomputed: None,
            cache: RefCell::new(FxHashMap::default()),
            pattern_cache: RefCell::new(None),
            scratch: None,
            own_arena: RefCell::new(None),
        }
    }

    /// Creates a matcher that consults a precomputed sketch index before
    /// falling back to on-demand sketch construction.
    pub fn with_sketches(g: &'g Graph, cfg: MatcherConfig, idx: &'g SketchIndex) -> Self {
        Self { precomputed: Some(idx), ..Self::new(g, cfg) }
    }

    /// Replaces the pattern-sketch cache with a shared one (see
    /// [`PatternSketchCache`]).
    pub fn with_shared_pattern_cache(self, cache: PatternSketchCache) -> Self {
        *self.pattern_cache.borrow_mut() = Some(cache);
        self
    }

    /// Replaces the search-state arena with a shared one (see
    /// [`SharedScratch`]): matchers built per site graph on one thread
    /// then reuse candidate stacks and mark buffers instead of
    /// reallocating them per search.
    pub fn with_scratch(mut self, scratch: SharedScratch) -> Self {
        self.scratch = Some(scratch);
        self
    }

    /// Checks the search arena out (shared cell, own cell, or fresh).
    fn take_arena(&self) -> Box<ScratchArena> {
        match &self.scratch {
            Some(s) => s.take(),
            None => self.own_arena.borrow_mut().take().unwrap_or_default(),
        }
    }

    /// Parks the search arena back after a search.
    fn put_arena(&self, arena: Box<ScratchArena>) {
        match &self.scratch {
            Some(s) => s.put(arena),
            None => *self.own_arena.borrow_mut() = Some(arena),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The configuration in force.
    pub fn config(&self) -> MatcherConfig {
        self.cfg
    }

    /// All data nodes satisfying the condition of pattern node `u`,
    /// served from the graph's label-partitioned node index.
    pub fn candidates(&self, p: &Pattern, u: PNodeId) -> Vec<NodeId> {
        match p.cond(u) {
            NodeCond::Label(l) => self.g.nodes_with_label_slice(l).to_vec(),
            NodeCond::Any => self.g.nodes().collect(),
        }
    }

    /// Whether at least one match maps `u ↦ v` (early termination at the
    /// first witness — the `Match` optimization of §5.2).
    pub fn exists_anchored(&self, p: &Pattern, u: PNodeId, v: NodeId) -> bool {
        let mut found = false;
        self.run_anchored(p, u, v, &mut |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }

    /// Enumerates every match mapping `u ↦ v`. The callback receives the
    /// complete assignment (indexed by pattern node) and may stop the
    /// enumeration by returning [`ControlFlow::Break`].
    pub fn enumerate_anchored(
        &self,
        p: &Pattern,
        u: PNodeId,
        v: NodeId,
        cb: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) {
        self.run_anchored(p, u, v, cb);
    }

    /// Counts matches mapping `u ↦ v`, up to an optional cap (full
    /// enumeration, as the `Matchc`/`disVF2` baselines perform). The
    /// result never exceeds the cap; `Some(0)` means "stop now" and
    /// returns 0 without searching (an exhausted cap handed down by
    /// [`Matcher::count_matches`] is not the same as `None` = uncapped).
    pub fn count_anchored(&self, p: &Pattern, u: PNodeId, v: NodeId, cap: Option<u64>) -> u64 {
        if cap == Some(0) {
            return 0;
        }
        let mut n = 0u64;
        self.run_anchored(p, u, v, &mut |_| {
            n += 1;
            match cap {
                Some(c) if n >= c => ControlFlow::Break(()),
                _ => ControlFlow::Continue(()),
            }
        });
        n
    }

    /// `Q(u, G)`: the distinct images of pattern node `u` across all
    /// matches, computed with early termination per candidate.
    pub fn images(&self, p: &Pattern, u: PNodeId) -> FxHashSet<NodeId> {
        self.images_among(p, u, self.candidates(p, u).into_iter())
    }

    /// As [`Matcher::images`] but restricted to the given candidates.
    pub fn images_among(
        &self,
        p: &Pattern,
        u: PNodeId,
        candidates: impl Iterator<Item = NodeId>,
    ) -> FxHashSet<NodeId> {
        candidates.filter(|&v| self.exists_anchored(p, u, v)).collect()
    }

    /// `Q(u, G)` computed by *full enumeration per candidate* — the cost
    /// profile of the `disVF2` baseline, which enumerates all isomorphic
    /// matches instead of stopping at the first.
    pub fn images_by_full_enumeration(&self, p: &Pattern, u: PNodeId) -> FxHashSet<NodeId> {
        let mut out = FxHashSet::default();
        for v in self.candidates(p, u) {
            if self.count_anchored(p, u, v, None) > 0 {
                out.insert(v);
            }
        }
        out
    }

    /// Counts all matches of `p` in the graph (`‖Q(G)‖`), up to `cap`.
    /// The result never exceeds the cap; a cap of `Some(0)` returns 0
    /// without enumerating any candidate.
    pub fn count_matches(&self, p: &Pattern, cap: Option<u64>) -> u64 {
        let mut n = 0u64;
        for v in self.candidates(p, p.x()) {
            // The remaining budget is strictly positive here (`n < c` or
            // we returned below), so the per-candidate call can never
            // confuse an exhausted cap with "no cap".
            n += self.count_anchored(p, p.x(), v, cap.map(|c| c.saturating_sub(n)));
            if let Some(c) = cap {
                if n >= c {
                    return c;
                }
            }
        }
        n
    }

    /// Enumerates all matches of `p` (anchorless).
    pub fn enumerate(&self, p: &Pattern, cb: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>) {
        for v in self.candidates(p, p.x()) {
            let mut stop = false;
            self.run_anchored(p, p.x(), v, &mut |m| {
                let flow = cb(m);
                if flow.is_break() {
                    stop = true;
                }
                flow
            });
            if stop {
                return;
            }
        }
    }

    fn run_anchored(
        &self,
        p: &Pattern,
        u: PNodeId,
        v: NodeId,
        cb: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) {
        // Check the arena out of its cell for the whole search: a
        // re-entrant matcher call from the callback finds the cell empty
        // and falls back to a fresh arena instead of aliasing this one.
        let mut arena = self.take_arena();
        arena.begin(p.node_count(), self.g.node_count());
        // Pattern-derived search state (visit order, degree requirements,
        // node flags) depends only on (pattern, anchor, order flavor) —
        // which is constant across the thousands of candidate probes a
        // round makes — so it is kept in the arena under the pattern's
        // structural fingerprint: the active slot serves the steady state
        // (one pattern probed at every candidate), and the keyed
        // multi-entry cache serves alternating workloads (EIP switching
        // between `Q` and `P_R` per rule); only a miss in both recomputes.
        let prefer_degree = self.cfg.kind != EngineKind::Vf2;
        build_pattern_key(p, self.cfg.sketch_k, &mut arena.key);
        if (arena.key != arena.meta_key
            || u.0 != arena.meta_anchor
            || prefer_degree != arena.meta_prefer)
            && !arena.switch_meta(u.0, prefer_degree)
        {
            arena.meta_recomputes += 1;
            compute_pattern_meta(p, &mut arena.deg_req, &mut arena.node_flags);
            compute_label_requirements(p, &mut arena.lab_req, &mut arena.lab_req_offsets);
            {
                let ScratchArena { order, placed, conn, .. } = &mut *arena;
                visit_order(p, u, prefer_degree, order, placed, conn);
            }
            let ScratchArena { key, meta_key, .. } = &mut *arena;
            std::mem::swap(key, meta_key);
            arena.meta_anchor = u.0;
            arena.meta_prefer = prefer_degree;
        }
        'search: {
            if !self.node_feasible(p, u, v, &arena) {
                break 'search;
            }
            // The anchor is assigned without going through the candidate
            // generator, so its self-loop edges must be verified here.
            for &(dst, cond) in p.out(u) {
                if dst == u && !self.edge_exists(v, v, cond) {
                    break 'search;
                }
            }
            let psketches = if self.cfg.kind == EngineKind::Guided {
                Some(self.pattern_sketches(p, &arena.meta_key))
            } else {
                None
            };
            let proceed = match &psketches {
                Some(ps) if self.cfg.sketch_prune => {
                    self.data_sketch_covers(v, &ps[u.index()], &mut arena.nbr)
                }
                _ => true,
            };
            if proceed {
                arena.assign(u.index(), v);
                let psk: Option<&[Sketch]> = psketches.as_ref().map(|r| r.as_slice());
                let _ = self.go(p, 1, &mut arena, psk, cb);
            }
        }
        self.put_arena(arena);
    }

    /// Cached per-pattern-node sketches, keyed by the structural
    /// fingerprint of the pattern (see [`build_pattern_key`] — the same
    /// key that guards the arena's pattern metadata), so equal patterns
    /// share one entry regardless of allocation identity. Cache hits
    /// allocate nothing.
    fn pattern_sketches(&self, p: &Pattern, key: &[u64]) -> std::rc::Rc<Vec<Sketch>> {
        let cache = self.pattern_cache.borrow_mut().get_or_insert_with(Default::default).clone();
        if let Some(hit) = cache.borrow().get(key) {
            return hit.clone();
        }
        let built = std::rc::Rc::new(
            p.nodes().map(|pu| pattern_sketch(p, pu, self.cfg.sketch_k)).collect::<Vec<_>>(),
        );
        cache.borrow_mut().insert(key.to_vec(), built.clone());
        built
    }

    fn go(
        &self,
        p: &Pattern,
        pos: usize,
        st: &mut ScratchArena,
        psk: Option<&[Sketch]>,
        cb: &mut dyn FnMut(&[NodeId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if pos == st.order.len() {
            st.out.clear();
            st.out.extend_from_slice(&st.map);
            return cb(&st.out);
        }
        let u = st.order[pos];
        let (start, verified) = self.gen_candidates_into(p, u, st);
        self.rank_segment(u, st, start, psk);
        let mut flow = ControlFlow::Continue(());
        // The segment is fixed during iteration: deeper frames push above
        // `end` and truncate back before returning.
        let end = st.cand.len();
        let mut i = start;
        while i < end {
            let v = st.cand[i];
            i += 1;
            // Intersection-path candidates are fully verified at
            // generation time (injectivity included — the used-set cannot
            // change between generation and this loop: siblings and
            // deeper frames unassign before the next candidate runs).
            // The legacy generate-then-filter path re-verifies here.
            if !verified {
                if st.used.contains(v) {
                    st.cand_pruned += 1;
                    continue;
                }
                if !self.assign_feasible(p, u, v, st) {
                    st.cand_pruned += 1;
                    continue;
                }
            }
            st.assign(u.index(), v);
            let f = self.go(p, pos + 1, st, psk, cb);
            st.unassign(u.index(), v);
            if f.is_break() {
                flow = f;
                break;
            }
        }
        st.cand.truncate(start);
        flow
    }

    /// Pushes the candidate segment for pattern node `u` onto the arena's
    /// stack, returning `(segment_start, fully_verified)`.
    ///
    /// Intersection path: the mapped pattern neighbor with the smallest
    /// label-filtered adjacency run seeds the segment; every other
    /// labeled constraint is intersected in with a two-pointer merge over
    /// the `(label, endpoint)`-sorted CSR runs; wildcard constraints,
    /// node conditions and self-loops are verified per survivor. The
    /// returned candidates need no further structural checks.
    fn gen_candidates_into(&self, p: &Pattern, u: PNodeId, st: &mut ScratchArena) -> (usize, bool) {
        let start = st.cand.len();
        if self.cfg.legacy_filter_gen {
            self.gen_candidates_legacy(p, u, st);
            return (start, false);
        }
        // 1. Smallest-run selection over the mapped-neighbor constraints.
        //    `incoming_of_m` selects which side of the pattern edge the
        //    mapped node plays (candidates sit on the other side).
        // The chosen run is retained (it borrows the graph, `'g`, not
        // `self`) so the winner is never re-derived.
        let mut base: Option<(&'g [Edge], NodeId, EdgeCond, bool)> = None;
        let mut n_constraints = 0usize;
        for &(dst, cond) in p.out(u) {
            if dst == u {
                continue; // self-loop: checked per candidate below
            }
            if let Some(m) = st.mapped(dst.index()) {
                n_constraints += 1;
                let run = self.adjacent_slice(m, cond, true);
                if base.is_none_or(|b| run.len() < b.0.len()) {
                    base = Some((run, m, cond, true));
                }
            }
        }
        for &(src, cond) in p.inn(u) {
            if src == u {
                continue;
            }
            if let Some(m) = st.mapped(src.index()) {
                n_constraints += 1;
                let run = self.adjacent_slice(m, cond, false);
                if base.is_none_or(|b| run.len() < b.0.len()) {
                    base = Some((run, m, cond, false));
                }
            }
        }
        // Fast path: one labeled constraint (tree-shaped steps, the common
        // case) — its run is already unique and sorted, so verify straight
        // off the CSR slice with no working-set copies.
        if n_constraints == 1 {
            if let Some((run, _, EdgeCond::Label(_), _)) = base {
                self.push_verified_bulk(p, u, st, run.iter().map(|e| e.node), false);
                return (start, true);
            }
        }
        let Some((brun, bm, bcond, binc)) = base else {
            // No mapped neighbor (disconnected component start): seed from
            // the label-partitioned node index.
            match p.cond(u) {
                NodeCond::Label(l) => {
                    let run = self.g.nodes_with_label_slice(l);
                    self.push_verified_bulk(p, u, st, run.iter().copied(), false);
                }
                NodeCond::Any => {
                    let all = self.g.nodes();
                    self.push_verified_bulk(p, u, st, all, false);
                }
            }
            return (start, true);
        };
        // 2. Seed the working set with the base run (ascending node ids).
        st.tmp.clear();
        st.tmp.extend(brun.iter().map(|e| e.node));
        if matches!(bcond, EdgeCond::Any) {
            // A wildcard run spans several label runs; the same endpoint
            // can repeat under different labels.
            st.tmp.sort_unstable();
            st.tmp.dedup();
        }
        // 3. Sorted-run intersection with every other labeled constraint.
        let mut base_pending = true;
        let mut has_wildcard = false;
        for side in 0..2 {
            let edges = if side == 0 { p.out(u) } else { p.inn(u) };
            let incoming_of_m = side == 0;
            for &(other, cond) in edges {
                if other == u {
                    continue;
                }
                let Some(m) = st.mapped(other.index()) else { continue };
                if base_pending && m == bm && cond == bcond && incoming_of_m == binc {
                    base_pending = false;
                    continue; // the base constraint holds by construction
                }
                match cond {
                    EdgeCond::Label(_) => {
                        let run = self.adjacent_slice(m, cond, incoming_of_m);
                        intersect_run(&mut st.tmp, &mut st.tmp2, run);
                        if st.tmp.is_empty() {
                            return (start, true);
                        }
                    }
                    EdgeCond::Any => has_wildcard = true,
                }
            }
        }
        // 4. Per-survivor verification: node condition + degree bounds,
        //    self-loops, and any wildcard constraints left over.
        let tmp = std::mem::take(&mut st.tmp);
        self.push_verified_bulk(p, u, st, tmp.iter().copied(), has_wildcard);
        st.tmp = tmp;
        (start, true)
    }

    /// Bulk candidate verification: when pattern node `u` has no
    /// self-loops, no wildcard constraints to check and no labeled-degree
    /// demands, every per-candidate invariant (node condition, degree
    /// requirements) is hoisted out of the loop and the segment is filled
    /// in one tight pass; otherwise falls back to the general per-item
    /// verifier.
    fn push_verified_bulk(
        &self,
        p: &Pattern,
        u: PNodeId,
        st: &mut ScratchArena,
        nodes: impl Iterator<Item = NodeId>,
        check_wildcards: bool,
    ) {
        let ui = u.index();
        let simple = st.node_flags[ui] == 0
            && st.lab_req_offsets[ui] == st.lab_req_offsets[ui + 1]
            && !check_wildcards;
        if !simple {
            for v in nodes {
                st.cand_generated += 1;
                let before = st.cand.len();
                self.push_verified(p, u, v, st, check_wildcards);
                if st.cand.len() == before {
                    st.cand_pruned += 1;
                }
            }
            return;
        }
        let (out_req, in_req) = st.deg_req[ui];
        let (out_req, in_req) = (out_req as usize, in_req as usize);
        let ScratchArena { cand, used, cand_generated, cand_pruned, .. } = st;
        match p.cond(u) {
            NodeCond::Label(lc) => {
                for v in nodes {
                    *cand_generated += 1;
                    if self.g.node_label(v) == lc
                        && self.g.out_degree(v) >= out_req
                        && self.g.in_degree(v) >= in_req
                        && !used.contains(v)
                    {
                        cand.push(v);
                    } else {
                        *cand_pruned += 1;
                    }
                }
            }
            NodeCond::Any => {
                for v in nodes {
                    *cand_generated += 1;
                    if self.g.out_degree(v) >= out_req
                        && self.g.in_degree(v) >= in_req
                        && !used.contains(v)
                    {
                        cand.push(v);
                    } else {
                        *cand_pruned += 1;
                    }
                }
            }
        }
    }

    /// Verifies `v` as a candidate for `u` (node condition, degree
    /// bounds, self-loop edges and — when `check_wildcards` — wildcard
    /// edges to mapped neighbors) and pushes it onto the segment. The
    /// per-search node flags skip the edge scans entirely for the common
    /// case (no self-loops, no wildcard constraints).
    fn push_verified(
        &self,
        p: &Pattern,
        u: PNodeId,
        v: NodeId,
        st: &mut ScratchArena,
        check_wildcards: bool,
    ) {
        if st.used.contains(v) || !self.node_feasible(p, u, v, st) {
            return;
        }
        let flags = st.node_flags[u.index()];
        if flags & crate::scratch::SELF_LOOP != 0 {
            // Self-loop edges: u maps to v on both ends (any condition).
            for &(dst, cond) in p.out(u) {
                if dst == u && !self.edge_exists(v, v, cond) {
                    return;
                }
            }
        }
        if check_wildcards {
            if flags & crate::scratch::WILD_OUT != 0 {
                for &(dst, cond) in p.out(u) {
                    if dst != u && cond == EdgeCond::Any {
                        if let Some(m) = st.mapped(dst.index()) {
                            if !self.edge_exists(v, m, cond) {
                                return;
                            }
                        }
                    }
                }
            }
            if flags & crate::scratch::WILD_IN != 0 {
                for &(src, cond) in p.inn(u) {
                    if src != u && cond == EdgeCond::Any {
                        if let Some(m) = st.mapped(src.index()) {
                            if !self.edge_exists(m, v, cond) {
                                return;
                            }
                        }
                    }
                }
            }
        }
        st.cand.push(v);
    }

    /// The original generate-then-filter candidate generator: copy out
    /// the smallest mapped-neighbor adjacency list and let the assignment
    /// loop re-verify every structural condition per candidate. Kept as a
    /// differential-testing oracle ([`MatcherConfig::legacy_filter_gen`]).
    /// Counts the whole raw segment as generated; the re-filter in `go`
    /// counts its rejects as pruned.
    fn gen_candidates_legacy(&self, p: &Pattern, u: PNodeId, st: &mut ScratchArena) {
        let seg_start = st.cand.len();
        self.gen_candidates_legacy_inner(p, u, st);
        st.cand_generated += (st.cand.len() - seg_start) as u64;
    }

    fn gen_candidates_legacy_inner(&self, p: &Pattern, u: PNodeId, st: &mut ScratchArena) {
        let mut best: Option<(usize, NodeId, EdgeCond, bool)> = None;
        for &(dst, cond) in p.out(u) {
            if let Some(m) = st.mapped(dst.index()) {
                let len = self.adjacent_slice(m, cond, true).len();
                if best.is_none_or(|b| len < b.0) {
                    best = Some((len, m, cond, true));
                }
            }
        }
        for &(src, cond) in p.inn(u) {
            if let Some(m) = st.mapped(src.index()) {
                let len = self.adjacent_slice(m, cond, false).len();
                if best.is_none_or(|b| len < b.0) {
                    best = Some((len, m, cond, false));
                }
            }
        }
        match best {
            Some((_, m, cond, inc)) => {
                st.tmp.clear();
                st.tmp.extend(self.adjacent_slice(m, cond, inc).iter().map(|e| e.node));
                if matches!(cond, EdgeCond::Any) {
                    st.tmp.sort_unstable();
                    st.tmp.dedup();
                }
                let tmp = std::mem::take(&mut st.tmp);
                st.cand.extend_from_slice(&tmp);
                st.tmp = tmp;
            }
            // No mapped neighbor: full label scan (disconnected component
            // start).
            None => match p.cond(u) {
                NodeCond::Label(l) => {
                    st.cand.extend_from_slice(self.g.nodes_with_label_slice(l));
                }
                NodeCond::Any => st.cand.extend(self.g.nodes()),
            },
        }
    }

    /// The CSR adjacency run of data node `m` matching `cond`;
    /// `incoming_of_m` selects which side of the pattern edge `m` plays.
    /// Labeled runs are contiguous and sorted by endpoint id.
    fn adjacent_slice(&self, m: NodeId, cond: EdgeCond, incoming_of_m: bool) -> &'g [Edge] {
        match (cond, incoming_of_m) {
            (EdgeCond::Label(l), true) => self.g.in_edges_labeled(m, l),
            (EdgeCond::Label(l), false) => self.g.out_edges_labeled(m, l),
            (EdgeCond::Any, true) => self.g.in_edges(m),
            (EdgeCond::Any, false) => self.g.out_edges(m),
        }
    }

    /// Guided search: scores the candidate segment by sketch surplus,
    /// prunes mismatches, and sorts best-first (the paper's `f(u', v')`
    /// ranking). In-place on the arena segment.
    fn rank_segment(
        &self,
        u: PNodeId,
        st: &mut ScratchArena,
        start: usize,
        psk: Option<&[Sketch]>,
    ) {
        let Some(psk) = psk else { return };
        if st.cand.len() - start < self.cfg.guided_min_branch.max(2) {
            return;
        }
        let ps = &psk[u.index()];
        let ScratchArena { cand, scored, nbr, .. } = st;
        scored.clear();
        for &v in &cand[start..] {
            match self.data_sketch_surplus(v, ps, nbr) {
                Some(s) => scored.push((s, v)),
                None if self.cfg.sketch_prune => {} // mismatch ⇒ prune
                None => scored.push((i64::MIN, v)),
            }
        }
        // Best (largest surplus) first.
        scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        cand.truncate(start);
        cand.extend(scored.iter().map(|&(_, v)| v));
    }

    /// Node condition plus the degree pigeonhole. The degree bound is the
    /// precomputed *requirement* (see [`compute_pattern_meta`]),
    /// not the raw pattern degree: parallel pattern edges between one
    /// node pair can share a witnessing data edge when their conditions
    /// overlap (e.g. a wildcard next to a labeled edge), so counting raw
    /// edges over-prunes. (The pre-arena engine had exactly that bug; the
    /// differential suite's brute-force oracle pinned it down.)
    fn node_feasible(&self, p: &Pattern, u: PNodeId, v: NodeId, st: &ScratchArena) -> bool {
        let (out_req, in_req) = st.deg_req[u.index()];
        if !p.cond(u).matches(self.g.node_label(v))
            || out_req as usize > self.g.out_degree(v)
            || in_req as usize > self.g.in_degree(v)
        {
            return false;
        }
        // Labeled-degree requirements: the candidate must carry enough
        // edges of every label the pattern node demands — this prunes
        // nodes whose one matching edge got them generated but whose
        // label profile cannot support the remaining pattern edges.
        let lo = st.lab_req_offsets[u.index()] as usize;
        let hi = st.lab_req_offsets[u.index() + 1] as usize;
        st.lab_req[lo..hi].iter().all(|&(l, cnt, is_out)| {
            let run =
                if is_out { self.g.out_edges_labeled(v, l) } else { self.g.in_edges_labeled(v, l) };
            run.len() >= cnt as usize
        })
    }

    /// Legacy-path feasibility: full structural re-verification of `v`
    /// against the partial map (injectivity is checked by the caller).
    fn assign_feasible(&self, p: &Pattern, u: PNodeId, v: NodeId, st: &ScratchArena) -> bool {
        if !self.node_feasible(p, u, v, st) {
            return false;
        }
        // Self-loop pattern edges (dst == u) must be checked against v
        // itself: u is not yet in the partial map at this point.
        for &(dst, cond) in p.out(u) {
            let target = if dst == u { Some(v) } else { st.mapped(dst.index()) };
            if let Some(m) = target {
                if !self.edge_exists(v, m, cond) {
                    return false;
                }
            }
        }
        for &(src, cond) in p.inn(u) {
            if src == u {
                continue; // self-loop already verified above
            }
            if let Some(m) = st.mapped(src.index()) {
                if !self.edge_exists(m, v, cond) {
                    return false;
                }
            }
        }
        true
    }

    fn edge_exists(&self, s: NodeId, d: NodeId, cond: EdgeCond) -> bool {
        match cond {
            EdgeCond::Label(l) => self.g.has_edge(s, d, l),
            EdgeCond::Any => self.g.out_edges(s).iter().any(|e| e.node == d),
        }
    }

    fn with_data_sketch<R>(
        &self,
        v: NodeId,
        nbr: &mut NeighborhoodScratch,
        f: impl FnOnce(&Sketch) -> R,
    ) -> R {
        if let Some(idx) = self.precomputed {
            if let Some(s) = idx.get(v) {
                return f(s);
            }
        }
        if let Some(s) = self.cache.borrow().get(&v) {
            return f(s);
        }
        let s = Sketch::build_with(self.g, v, self.cfg.sketch_k, nbr);
        let r = f(&s);
        self.cache.borrow_mut().insert(v, s);
        r
    }

    fn data_sketch_covers(&self, v: NodeId, ps: &Sketch, nbr: &mut NeighborhoodScratch) -> bool {
        self.with_data_sketch(v, nbr, |ds| ds.covers(ps))
    }

    fn data_sketch_surplus(
        &self,
        v: NodeId,
        ps: &Sketch,
        nbr: &mut NeighborhoodScratch,
    ) -> Option<i64> {
        self.with_data_sketch(v, nbr, |ds| ds.surplus(ps))
    }
}

/// Builds the structural fingerprint of `(pattern, sketch_k)` into a
/// reusable buffer: node conditions, a separator, then every edge. Equal
/// patterns produce equal keys regardless of allocation identity; the key
/// doubles as the pattern-sketch cache key and the guard for the arena's
/// cached per-pattern search metadata.
fn build_pattern_key(p: &Pattern, sketch_k: u32, key: &mut Vec<u64>) {
    key.clear();
    key.reserve(2 + p.node_count() + 3 * p.edge_count());
    key.push(sketch_k as u64);
    for u in p.nodes() {
        key.push(match p.cond(u) {
            NodeCond::Label(l) => l.0 as u64,
            NodeCond::Any => u64::MAX,
        });
    }
    key.push(u64::MAX - 1);
    for e in p.edges() {
        key.push(e.src.0 as u64);
        key.push(e.dst.0 as u64);
        key.push(match e.cond {
            EdgeCond::Label(l) => l.0 as u64,
            EdgeCond::Any => u64::MAX,
        });
    }
}

/// Computes per-pattern-node search metadata, recomputed only when the
/// arena's cached fingerprint changes (see `run_anchored`).
///
/// **Degree requirements** — the minimum (out, in) data degree any image
/// must have: for each *distinct* pattern neighbor, the number of
/// distinct labeled conditions on the parallel edges to it (at least 1 —
/// wildcard-only bundles share a single witnessing edge). Distinct mapped
/// neighbors force distinct data edges (node injectivity), and distinct
/// labels force distinct edges to one neighbor, so the sum is a sound
/// lower bound — unlike the raw edge count, which over-prunes when a
/// wildcard condition can share its witness with a labeled one.
///
/// **Node flags** — whether the node has self-loops / wildcard edges, so
/// the per-candidate verifier skips edge scans that cannot apply.
fn compute_pattern_meta(p: &Pattern, deg_req: &mut Vec<(u32, u32)>, flags: &mut Vec<u8>) {
    let requirement = |edges: &[(PNodeId, EdgeCond)]| -> u32 {
        let mut req = 0u32;
        for (i, &(v, _)) in edges.iter().enumerate() {
            if edges[..i].iter().any(|&(w, _)| w == v) {
                continue; // endpoint already accounted for
            }
            let mut labels = 0u32;
            for (j, &(w, c)) in edges.iter().enumerate() {
                if w != v {
                    continue;
                }
                if let EdgeCond::Label(_) = c {
                    if !edges[..j].iter().any(|&(w2, c2)| w2 == v && c2 == c) {
                        labels += 1;
                    }
                }
            }
            req += labels.max(1);
        }
        req
    };
    deg_req.clear();
    deg_req.extend(p.nodes().map(|u| (requirement(p.out(u)), requirement(p.inn(u)))));
    flags.clear();
    flags.extend(p.nodes().map(|u| {
        let mut f = 0u8;
        for &(dst, cond) in p.out(u) {
            if dst == u {
                f |= crate::scratch::SELF_LOOP;
            } else if cond == EdgeCond::Any {
                f |= crate::scratch::WILD_OUT;
            }
        }
        for &(src, cond) in p.inn(u) {
            if src != u && cond == EdgeCond::Any {
                f |= crate::scratch::WILD_IN;
            }
        }
        f
    }));
}

/// Computes the flattened per-node *labeled*-degree requirements: for
/// every label `l` on a pattern node's edges, the number of distinct
/// neighbors reached through an `l`-labeled edge. Any image must carry at
/// least that many `l`-labeled data edges on the matching side (distinct
/// neighbors map to distinct data nodes), which prunes candidates whose
/// one matching edge got them generated but whose label profile cannot
/// support the rest of the pattern.
fn compute_label_requirements(
    p: &Pattern,
    lab_req: &mut Vec<(Label, u32, bool)>,
    offsets: &mut Vec<u32>,
) {
    lab_req.clear();
    offsets.clear();
    offsets.push(0);
    let emit = |edges: &[(PNodeId, EdgeCond)], is_out: bool, out: &mut Vec<(Label, u32, bool)>| {
        for (i, &(v, c)) in edges.iter().enumerate() {
            let EdgeCond::Label(l) = c else { continue };
            // First occurrence of this label emits the count.
            if edges[..i].iter().any(|&(_, c2)| c2 == c) {
                continue;
            }
            let mut distinct = 0u32;
            for (j, &(w, c2)) in edges.iter().enumerate() {
                if c2 == c && !edges[..j].iter().any(|&(w2, c3)| c3 == c && w2 == w) {
                    distinct += 1;
                }
            }
            let _ = v;
            // A single-edge demand is almost always satisfied (the
            // candidate was usually *generated* from such an edge), so
            // the probe would cost more than it prunes; only multi-copy
            // demands are selective enough to pay for themselves.
            if distinct >= 2 {
                out.push((l, distinct, is_out));
            }
        }
    };
    for u in p.nodes() {
        emit(p.out(u), true, lab_req);
        emit(p.inn(u), false, lab_req);
        offsets.push(lab_req.len() as u32);
    }
}

/// Two-pointer intersection of the sorted working set with a labeled
/// adjacency run (both ascending by node id); result replaces `tmp`.
fn intersect_run(tmp: &mut Vec<NodeId>, tmp2: &mut Vec<NodeId>, run: &[Edge]) {
    tmp2.clear();
    let (mut i, mut j) = (0, 0);
    while i < tmp.len() && j < run.len() {
        match tmp[i].cmp(&run[j].node) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                tmp2.push(tmp[i]);
                i += 1;
                j += 1;
            }
        }
    }
    std::mem::swap(tmp, tmp2);
}

/// A `Label` helper re-export for downstream test utilities.
pub type LabelAlias = Label;

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::PatternBuilder;
    use std::sync::Arc;

    /// Builds the paper's graph `G1` (Fig. 2): a restaurant recommendation
    /// network. Returns (graph, custs, le_bernardin).
    pub(crate) fn build_g1() -> (Graph, Vec<NodeId>, NodeId) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let city = vocab.intern("city");
        let fr = vocab.intern("french_restaurant");
        let asian = vocab.intern("asian_restaurant");
        let (live_in, friend, like, inn, visit) = (
            vocab.intern("live_in"),
            vocab.intern("friend"),
            vocab.intern("like"),
            vocab.intern("in"),
            vocab.intern("visit"),
        );
        let mut b = GraphBuilder::new(vocab);
        let custs: Vec<NodeId> = (0..6).map(|_| b.add_node(cust)).collect();
        let ny = b.add_node(city);
        let la = b.add_node(city);
        let le_bernardin = b.add_node(fr);
        let perse = b.add_node(fr);
        let patina = b.add_node(fr);
        // Three groups of 3 shared French restaurants (the "FR^3" nodes).
        let fr3_ny1: Vec<NodeId> = (0..3).map(|_| b.add_node(fr)).collect();
        let fr3_ny2: Vec<NodeId> = (0..3).map(|_| b.add_node(fr)).collect();
        let fr3_la: Vec<NodeId> = (0..3).map(|_| b.add_node(fr)).collect();
        let asian1 = b.add_node(asian);
        let asian2 = b.add_node(asian);

        // cust1, cust2 in New York; friends; share 3 FRs; both visit
        // Le Bernardin.
        b.add_edge(custs[0], ny, live_in);
        b.add_edge(custs[1], ny, live_in);
        b.add_edge(custs[0], custs[1], friend);
        b.add_edge(custs[1], custs[0], friend);
        for &r in &fr3_ny1 {
            b.add_edge(custs[0], r, like);
            b.add_edge(custs[1], r, like);
            b.add_edge(r, ny, inn);
        }
        b.add_edge(custs[0], le_bernardin, visit);
        b.add_edge(custs[1], le_bernardin, visit);
        b.add_edge(le_bernardin, ny, inn);

        // cust2 & cust3 friends; cust3 in NY, shares 3 FRs with cust2,
        // visits Le Bernardin too.
        b.add_edge(custs[2], ny, live_in);
        b.add_edge(custs[1], custs[2], friend);
        b.add_edge(custs[2], custs[1], friend);
        for &r in &fr3_ny2 {
            b.add_edge(custs[1], r, like);
            b.add_edge(custs[2], r, like);
            b.add_edge(r, ny, inn);
        }
        b.add_edge(custs[2], le_bernardin, visit);

        // cust4 in LA, visits Per se (a FR) — a match of q but not of Q1.
        b.add_edge(custs[3], la, live_in);
        b.add_edge(custs[3], perse, visit);
        b.add_edge(perse, la, inn);
        b.add_edge(patina, la, inn);

        // cust5 & cust6 in LA, friends, share 3 FRs; cust5 visits an Asian
        // restaurant only (the q̄ witness); cust6 visits a FR (Patina).
        b.add_edge(custs[4], la, live_in);
        b.add_edge(custs[5], la, live_in);
        b.add_edge(custs[4], custs[5], friend);
        b.add_edge(custs[5], custs[4], friend);
        for &r in &fr3_la {
            b.add_edge(custs[4], r, like);
            b.add_edge(custs[5], r, like);
            b.add_edge(r, la, inn);
        }
        b.add_edge(custs[4], asian1, visit);
        b.add_edge(asian1, la, inn);
        b.add_edge(custs[5], patina, visit);
        b.add_edge(custs[5], asian2, like);
        b.add_edge(asian2, la, inn);

        (b.build(), custs, le_bernardin)
    }

    /// The antecedent Q1 of Example 1 (with 3 restaurant copies).
    pub(crate) fn build_q1(vocab: &Arc<Vocab>) -> Pattern {
        let cust = vocab.intern("cust");
        let city = vocab.intern("city");
        let fr = vocab.intern("french_restaurant");
        let (live_in, friend, like, inn, visit) = (
            vocab.intern("live_in"),
            vocab.intern("friend"),
            vocab.intern("like"),
            vocab.intern("in"),
            vocab.intern("visit"),
        );
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let x2 = b.node(cust);
        let c = b.node(city);
        let y = b.node(fr);
        let rests = b.node_copies(fr, 3);
        b.edge(x, x2, friend);
        b.edge(x2, x, friend);
        b.edge(x, c, live_in);
        b.edge(x2, c, live_in);
        b.edge_to_copies(x, &rests, like);
        b.edge_to_copies(x2, &rests, like);
        b.edge_from_copies(&rests, c, inn);
        b.edge(y, c, inn);
        b.edge(x2, y, visit);
        b.designate(x, y).build().unwrap()
    }

    fn all_engines() -> Vec<MatcherConfig> {
        vec![
            MatcherConfig::vf2(),
            MatcherConfig::degree_ordered(),
            MatcherConfig::guided(),
            MatcherConfig::vf2().with_legacy_gen(),
            MatcherConfig::guided().with_legacy_gen(),
        ]
    }

    #[test]
    fn example_3_q1_images_are_cust_1_2_3_5() {
        let (g, custs, _) = build_g1();
        let q1 = build_q1(g.vocab());
        for cfg in all_engines() {
            let m = Matcher::new(&g, cfg);
            let imgs = m.images(&q1, q1.x());
            let expect: FxHashSet<NodeId> =
                [custs[0], custs[1], custs[2], custs[4]].into_iter().collect();
            assert_eq!(imgs, expect, "engine {:?}", cfg.kind);
        }
    }

    #[test]
    fn full_enumeration_agrees_with_early_termination() {
        let (g, _, _) = build_g1();
        let q1 = build_q1(g.vocab());
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert_eq!(m.images(&q1, q1.x()), m.images_by_full_enumeration(&q1, q1.x()));
    }

    #[test]
    fn anchored_existence_and_counting() {
        let (g, custs, lb) = build_g1();
        let q1 = build_q1(g.vocab());
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&q1, q1.x(), custs[0]));
        assert!(!m.exists_anchored(&q1, q1.x(), custs[3]));
        // The designated y: cust1's matches put Le Bernardin at y.
        let y = q1.y().unwrap();
        let mut saw_lb = false;
        m.enumerate_anchored(&q1, q1.x(), custs[0], &mut |mm| {
            if mm[y.index()] == lb {
                saw_lb = true;
            }
            ControlFlow::Continue(())
        });
        assert!(saw_lb);
        // Copies are interchangeable: 3! orderings of the FR^3 nodes.
        assert_eq!(m.count_anchored(&q1, q1.x(), custs[0], None) % 6, 0);
        // Cap is honored.
        assert_eq!(m.count_anchored(&q1, q1.x(), custs[0], Some(2)), 2);
    }

    #[test]
    fn intersection_and_legacy_counts_agree() {
        let (g, custs, _) = build_g1();
        let q1 = build_q1(g.vocab());
        let fast = Matcher::new(&g, MatcherConfig::vf2());
        let slow = Matcher::new(&g, MatcherConfig::vf2().with_legacy_gen());
        for &c in &custs {
            assert_eq!(
                fast.count_anchored(&q1, q1.x(), c, None),
                slow.count_anchored(&q1, q1.x(), c, None),
                "candidate {c}"
            );
        }
    }

    #[test]
    fn shared_scratch_is_reused_across_matchers() {
        let (g, custs, _) = build_g1();
        let q1 = build_q1(g.vocab());
        let scratch = SharedScratch::default();
        let baseline = Matcher::new(&g, MatcherConfig::vf2()).images(&q1, q1.x());
        for _ in 0..3 {
            let m = Matcher::new(&g, MatcherConfig::vf2()).with_scratch(scratch.clone());
            assert_eq!(m.images(&q1, q1.x()), baseline);
            assert!(m.exists_anchored(&q1, q1.x(), custs[0]));
        }
        // The arena retained its grown buffers between matchers.
        assert!(scratch.inspect(|a| a.cand.capacity()).unwrap_or(0) > 0);
    }

    #[test]
    fn candidate_counters_accumulate_and_drain() {
        let (g, custs, _) = build_g1();
        let q1 = build_q1(g.vocab());
        for cfg in [MatcherConfig::vf2(), MatcherConfig::vf2().with_legacy_gen()] {
            let scratch = SharedScratch::default();
            let m = Matcher::new(&g, cfg).with_scratch(scratch.clone());
            assert!(m.exists_anchored(&q1, q1.x(), custs[0]));
            let (generated, pruned, recomputes) = scratch.drain_counters();
            assert!(generated > 0, "a successful search considered candidates");
            assert!(pruned <= generated, "prunes are a subset of generated");
            assert_eq!(recomputes, 1, "one metadata computation for one pattern");
            // Draining zeroes: a second drain with no work in between is
            // all zeros.
            assert_eq!(scratch.drain_counters(), (0, 0, 0));
            // And more work accumulates again from zero.
            m.exists_anchored(&q1, q1.x(), custs[1]);
            let (g2, _, r2) = scratch.drain_counters();
            assert!(g2 > 0);
            assert_eq!(r2, 0, "metadata stayed cached across drains");
        }
    }

    #[test]
    fn meta_cache_serves_alternating_patterns() {
        // EIP's steady state: every candidate probes Q then P_R. The keyed
        // metadata cache must turn the per-switch recomputation into a
        // pair of swaps — exactly one recompute per distinct pattern, no
        // matter how many times the workload alternates.
        let (g, custs, _) = build_g1();
        let q1 = build_q1(g.vocab());
        // A second, structurally different pattern sharing the anchor
        // label.
        let vocab = g.vocab();
        let cust = vocab.get("cust").unwrap();
        let city = vocab.get("city").unwrap();
        let live_in = vocab.get("live_in").unwrap();
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let c = pb.node(city);
        pb.edge(x, c, live_in);
        let q2 = pb.designate_x(x).build().unwrap();

        let scratch = SharedScratch::default();
        let m = Matcher::new(&g, MatcherConfig::vf2()).with_scratch(scratch.clone());
        for _ in 0..10 {
            for &v in custs.iter().take(3) {
                m.exists_anchored(&q1, q1.x(), v);
                m.exists_anchored(&q2, q2.x(), v);
            }
        }
        let recomputes = scratch.inspect(|a| a.meta_recomputes()).unwrap();
        assert_eq!(recomputes, 2, "one recompute per distinct (pattern, anchor)");

        // Same pattern at a different anchor node id in the *pattern* is a
        // different entry; re-probing both afterwards stays cached.
        m.exists_anchored(&q1, q1.y().unwrap(), custs[0]);
        let after_anchor_switch = scratch.inspect(|a| a.meta_recomputes()).unwrap();
        assert_eq!(after_anchor_switch, 3);
        m.exists_anchored(&q1, q1.x(), custs[0]);
        m.exists_anchored(&q2, q2.x(), custs[0]);
        assert_eq!(scratch.inspect(|a| a.meta_recomputes()).unwrap(), 3);
    }

    #[test]
    fn injectivity_is_enforced() {
        // Pattern wants two distinct restaurants; data has one.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let r = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut gb = GraphBuilder::new(vocab.clone());
        let c = gb.add_node(cust);
        let r0 = gb.add_node(r);
        gb.add_edge(c, r0, like);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let rs = pb.node_copies(r, 2);
        pb.edge_to_copies(x, &rs, like);
        let p = pb.designate_x(x).build().unwrap();
        for cfg in all_engines() {
            let m = Matcher::new(&g, cfg);
            assert!(!m.exists_anchored(&p, x, c), "engine {:?}", cfg.kind);
        }
    }

    #[test]
    fn matches_are_not_induced() {
        // Data has an *extra* edge between matched nodes; the pattern still
        // matches (non-induced semantics).
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let extra = vocab.intern("extra");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let c = gb.add_node(n);
        gb.add_edge(a, c, e);
        gb.add_edge(c, a, extra);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let pa = pb.node(n);
        let pc = pb.node(n);
        pb.edge(pa, pc, e);
        let p = pb.designate_x(pa).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&p, pa, a));
    }

    #[test]
    fn wildcard_pattern_edges_match_any_label() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("weird");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let c = gb.add_node(n);
        gb.add_edge(a, c, e);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let pa = pb.node(n);
        let pc = pb.node_any();
        pb.edge_any(pa, pc);
        let p = pb.designate_x(pa).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&p, pa, a));
        assert!(!m.exists_anchored(&p, pa, c)); // c has no out-edge
    }

    #[test]
    fn parallel_multi_label_edges_count_one_match_per_assignment() {
        // a has TWO differently-labeled edges to c; a wildcard pattern
        // edge must yield ONE match (the assignment {pa ↦ a, pc ↦ c}),
        // not one per parallel edge. (The pre-arena generator double
        // counted here.)
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e1 = vocab.intern("e1");
        let e2 = vocab.intern("e2");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let c = gb.add_node(n);
        gb.add_edge(a, c, e1);
        gb.add_edge(a, c, e2);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let pa = pb.node(n);
        let pc = pb.node(n);
        pb.edge_any(pa, pc);
        let p = pb.designate_x(pa).build().unwrap();
        for cfg in all_engines() {
            let m = Matcher::new(&g, cfg);
            assert_eq!(m.count_anchored(&p, pa, a, None), 1, "engine {:?}", cfg.kind);
        }
    }

    #[test]
    fn disconnected_pattern_components_are_matched() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let k = vocab.intern("k");
        let e = vocab.intern("e");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let c = gb.add_node(n);
        let other = gb.add_node(k);
        gb.add_edge(a, c, e);
        let g = gb.build();
        // Pattern: edge n->n plus an isolated k node.
        let mut pb = PatternBuilder::new(vocab.clone());
        let pa = pb.node(n);
        let pc = pb.node(n);
        let pk = pb.node(k);
        pb.edge(pa, pc, e);
        let p = pb.designate_x(pa).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&p, pa, a));
        let y_imgs = m.images(&p, pk);
        assert!(y_imgs.contains(&other));
        // Remove the k node from data: no match anymore.
        let mut gb = GraphBuilder::new(vocab);
        let a2 = gb.add_node(n);
        let c2 = gb.add_node(n);
        gb.add_edge(a2, c2, e);
        let g2 = gb.build();
        let m2 = Matcher::new(&g2, MatcherConfig::vf2());
        assert!(!m2.exists_anchored(&p, pa, a2));
    }

    #[test]
    fn count_matches_counts_all_assignments() {
        // x -like-> r with 2 custs each liking 2 rests: 4 matches.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let r = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut gb = GraphBuilder::new(vocab.clone());
        for _ in 0..2 {
            let c = gb.add_node(cust);
            for _ in 0..2 {
                let rr = gb.add_node(r);
                gb.add_edge(c, rr, like);
            }
        }
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(r);
        pb.edge(x, y, like);
        let p = pb.designate(x, y).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert_eq!(m.count_matches(&p, None), 4);
        assert_eq!(m.count_matches(&p, Some(3)), 3);
    }

    /// Cap-boundary regression: an exhausted cap (`Some(0)`) must mean
    /// "stop now" — not fall through to a search, and never be conflated
    /// with `None` = uncapped. Pins both the per-anchor and the global
    /// counter at every boundary around the true count.
    #[test]
    fn count_caps_are_exact_at_the_boundary() {
        // 2 custs × 2 liked rests = 4 matches, 2 per anchored cust.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let r = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut gb = GraphBuilder::new(vocab.clone());
        let mut custs = Vec::new();
        for _ in 0..2 {
            let c = gb.add_node(cust);
            custs.push(c);
            for _ in 0..2 {
                let rr = gb.add_node(r);
                gb.add_edge(c, rr, like);
            }
        }
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(r);
        pb.edge(x, y, like);
        let p = pb.designate(x, y).build().unwrap();
        for cfg in [MatcherConfig::vf2(), MatcherConfig::degree_ordered(), MatcherConfig::guided()]
        {
            let m = Matcher::new(&g, cfg);
            // Anchored: true count is 2.
            assert_eq!(m.count_anchored(&p, x, custs[0], Some(0)), 0, "{:?}", cfg.kind);
            assert_eq!(m.count_anchored(&p, x, custs[0], Some(1)), 1, "{:?}", cfg.kind);
            assert_eq!(m.count_anchored(&p, x, custs[0], Some(2)), 2, "{:?}", cfg.kind);
            assert_eq!(m.count_anchored(&p, x, custs[0], Some(3)), 2, "cap above count");
            assert_eq!(m.count_anchored(&p, x, custs[0], None), 2, "uncapped");
            // Global: true count is 4; the second anchor receives the
            // residual budget, which hits exactly 0 mid-scan at cap 2.
            for cap in 0..=5u64 {
                assert_eq!(m.count_matches(&p, Some(cap)), cap.min(4), "cap {cap} {:?}", cfg.kind);
            }
        }
    }

    #[test]
    fn self_loop_patterns() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let c = gb.add_node(n);
        gb.add_edge(a, a, e);
        gb.add_edge(c, a, e);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(n);
        pb.edge(x, x, e);
        let p = pb.designate_x(x).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.exists_anchored(&p, x, a));
        assert!(!m.exists_anchored(&p, x, c));
    }

    #[test]
    fn non_anchor_self_loops_are_verified() {
        // Self-loop on a *non-anchor* pattern node: only the data node
        // with a loop may be chosen for it, whichever generator runs.
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let mut gb = GraphBuilder::new(vocab.clone());
        let a = gb.add_node(n);
        let looped = gb.add_node(n);
        let plain = gb.add_node(n);
        gb.add_edge(a, looped, e);
        gb.add_edge(a, plain, e);
        gb.add_edge(looped, looped, e);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(n);
        let y = pb.node(n);
        pb.edge(x, y, e);
        pb.edge(y, y, e);
        let p = pb.designate_x(x).build().unwrap();
        for cfg in all_engines() {
            let m = Matcher::new(&g, cfg);
            assert!(m.exists_anchored(&p, x, a), "engine {:?}", cfg.kind);
            assert_eq!(m.count_anchored(&p, x, a, None), 1, "engine {:?}", cfg.kind);
        }
    }

    #[test]
    fn guided_respects_precomputed_sketches() {
        let (g, custs, _) = build_g1();
        let q1 = build_q1(g.vocab());
        let idx = SketchIndex::build_all(&g, 2);
        let m = Matcher::with_sketches(&g, MatcherConfig::guided(), &idx);
        let imgs = m.images(&q1, q1.x());
        assert!(imgs.contains(&custs[0]));
        assert!(!imgs.contains(&custs[3]));
    }
}
