//! # gpar-iso
//!
//! Subgraph-isomorphism engines for GPAR matching.
//!
//! The paper adopts subgraph isomorphism for pattern matching (§2.1): a
//! match of pattern `Q` in graph `G` is an injective `h` from pattern nodes
//! to graph nodes such that node conditions hold (`f(u) = L(h(u))`) and
//! every pattern edge maps onto a graph edge with the matching label. (The
//! "if and only if" in the paper quantifies over the *witness subgraph*
//! `G'`, which is any subgraph of `G` containing exactly the mapped edges —
//! so the semantics is standard, non-induced subgraph isomorphism.)
//!
//! One [`Matcher`] type serves all algorithms in the paper, differing only
//! in configuration:
//!
//! | paper's algorithm | configuration |
//! |---|---|
//! | `VF2` baseline / `disVF2` | [`EngineKind::Vf2`], full enumeration |
//! | `Matchc` | [`EngineKind::Vf2`], one enumeration per candidate |
//! | `Match` (guided search, §5.2) | [`EngineKind::Guided`] + early stop |
//! | `Matchs` (ordering of [38]) | [`EngineKind::DegreeOrdered`] |
//!
//! Early termination is the *caller's* choice: [`Matcher::exists_anchored`]
//! stops at the first witness, [`Matcher::enumerate_anchored`] visits all
//! matches.

pub mod bruteforce;
pub mod matcher;
pub mod order;
pub mod scratch;
pub mod simulation;

pub use bruteforce::brute_force_images;
pub use matcher::{EngineKind, Matcher, MatcherConfig, PatternSketchCache};
pub use scratch::{ScratchArena, SharedScratch};
pub use simulation::{dual_simulation, simulation_images};

use gpar_graph::{FxHashSet, Graph, NodeId};
use gpar_pattern::{PNodeId, Pattern};

/// Convenience: `Q(u, G)` with the default VF2 engine — the set of distinct
/// matches of pattern node `u` over all matches of `p` in `g` (Table 1).
pub fn images(p: &Pattern, g: &Graph, u: PNodeId) -> FxHashSet<NodeId> {
    Matcher::new(g, MatcherConfig::vf2()).images(p, u)
}

/// Convenience: `Q(x, G)` for the designated node with the default engine.
pub fn images_of_x(p: &Pattern, g: &Graph) -> FxHashSet<NodeId> {
    images(p, g, p.x())
}
