//! Graph-simulation matching — the alternative semantics the paper's
//! conclusion (§7) names as future work ("extend GPARs … by allowing
//! other matching semantics such as graph simulation").
//!
//! A simulation relation `S ⊆ V_p × V` requires label compatibility and
//! that every pattern edge can be *followed*: if `(u, v) ∈ S` and
//! `(u, u')` is a pattern edge, some graph edge `(v, v')` with a matching
//! label has `(u', v') ∈ S` — and symmetrically for incoming pattern
//! edges (dual simulation, which is the variant that keeps designated-
//! node semantics sensible on social graphs). Unlike subgraph
//! isomorphism, simulation is computable in polynomial time
//! (`O(|V_p|·|E|)` per refinement round here) and does not require
//! injectivity, so `Q(x, G)` under simulation is a superset of the
//! isomorphism-based one — useful as a cheap over-approximation filter
//! or as a semantics of its own (cf. Fan et al., "Distributed Graph
//! Simulation", PVLDB 2014 [15]).

use gpar_graph::{FxHashSet, Graph, NodeId};
use gpar_pattern::{EdgeCond, Pattern};

/// Computes the maximal dual-simulation relation of `p` over `g`,
/// returned as one match set per pattern node (`sim[u]` = data nodes that
/// can simulate `u`). Empty sets mean the pattern cannot be simulated.
pub fn dual_simulation(p: &Pattern, g: &Graph) -> Vec<FxHashSet<NodeId>> {
    let mut sim: Vec<FxHashSet<NodeId>> = p
        .nodes()
        .map(|u| {
            g.nodes().filter(|&v| p.cond(u).matches(g.node_label(v))).collect::<FxHashSet<NodeId>>()
        })
        .collect();

    let can_follow_out = |g: &Graph, v: NodeId, cond: EdgeCond, tgt: &FxHashSet<NodeId>| match cond
    {
        EdgeCond::Label(l) => g.out_edges_labeled(v, l).iter().any(|e| tgt.contains(&e.node)),
        EdgeCond::Any => g.out_edges(v).iter().any(|e| tgt.contains(&e.node)),
    };
    let can_follow_in = |g: &Graph, v: NodeId, cond: EdgeCond, src: &FxHashSet<NodeId>| match cond {
        EdgeCond::Label(l) => g.in_edges_labeled(v, l).iter().any(|e| src.contains(&e.node)),
        EdgeCond::Any => g.in_edges(v).iter().any(|e| src.contains(&e.node)),
    };

    // Naive refinement to fixpoint; pattern sizes make this cheap and the
    // data pass is linear in Σ deg(v) per round.
    loop {
        let mut changed = false;
        for u in p.nodes() {
            let keep: FxHashSet<NodeId> = sim[u.index()]
                .iter()
                .copied()
                .filter(|&v| {
                    p.out(u)
                        .iter()
                        .all(|&(dst, cond)| can_follow_out(g, v, cond, &sim[dst.index()]))
                        && p.inn(u)
                            .iter()
                            .all(|&(src, cond)| can_follow_in(g, v, cond, &sim[src.index()]))
                })
                .collect();
            if keep.len() != sim[u.index()].len() {
                sim[u.index()] = keep;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // If any pattern node is unsimulable, the whole relation is empty.
    if sim.iter().any(|s| s.is_empty()) {
        for s in &mut sim {
            s.clear();
        }
    }
    sim
}

/// `Q(x, G)` under dual-simulation semantics: the data nodes that can
/// simulate the designated node. Always a superset of the subgraph-
/// isomorphism match set (simulation drops injectivity), making it a
/// sound pre-filter for the exact engines.
pub fn simulation_images(p: &Pattern, g: &Graph) -> FxHashSet<NodeId> {
    dual_simulation(p, g).swap_remove(p.x().index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matcher, MatcherConfig};
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::PatternBuilder;

    /// cust -like-> rest pattern over two custs, one matching.
    #[test]
    fn simulation_matches_edge_followability() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut b = GraphBuilder::new(vocab.clone());
        let c1 = b.add_node(cust);
        let c2 = b.add_node(cust);
        let r = b.add_node(rest);
        b.add_edge(c1, r, like);
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let p = pb.designate(x, y).build().unwrap();
        let sims = simulation_images(&p, &g);
        assert!(sims.contains(&c1));
        assert!(!sims.contains(&c2));
    }

    /// The canonical case where simulation is strictly weaker than
    /// isomorphism: a pattern needing two distinct neighbors is simulated
    /// by a node with one (no injectivity).
    #[test]
    fn simulation_is_a_superset_of_isomorphism() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut b = GraphBuilder::new(vocab.clone());
        let c = b.add_node(cust);
        let r = b.add_node(rest);
        b.add_edge(c, r, like);
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let rs = pb.node_copies(rest, 2); // needs two distinct restaurants
        pb.edge_to_copies(x, &rs, like);
        let p = pb.designate_x(x).build().unwrap();
        let iso = Matcher::new(&g, MatcherConfig::vf2()).images(&p, x);
        let sim = simulation_images(&p, &g);
        assert!(iso.is_empty(), "isomorphism needs 2 distinct restaurants");
        assert!(sim.contains(&c), "simulation folds the copies");
        assert!(iso.is_subset(&sim));
    }

    #[test]
    fn unsimulable_pattern_yields_empty_relation() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let ghost = vocab.intern("ghost");
        let e = vocab.intern("e");
        let mut b = GraphBuilder::new(vocab.clone());
        b.add_node(cust);
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let gh = pb.node(ghost);
        pb.edge(x, gh, e);
        let p = pb.designate_x(x).build().unwrap();
        let sim = dual_simulation(&p, &g);
        assert!(sim.iter().all(|s| s.is_empty()));
    }

    /// Dual simulation respects *incoming* pattern edges too: a node with
    /// the right out-edges but no required in-edge is rejected.
    #[test]
    fn dual_simulation_checks_incoming_edges() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let mut b = GraphBuilder::new(vocab.clone());
        let a = b.add_node(n);
        let c = b.add_node(n);
        let d = b.add_node(n);
        b.add_edge(a, c, e);
        b.add_edge(c, d, e);
        let g = b.build();
        // Pattern: u0 -> u1 -> u2; middle node needs both in and out.
        let mut pb = PatternBuilder::new(vocab);
        let u0 = pb.node(n);
        let u1 = pb.node(n);
        let u2 = pb.node(n);
        pb.edge(u0, u1, e);
        pb.edge(u1, u2, e);
        let p = pb.designate_x(u1).build().unwrap();
        let sims = simulation_images(&p, &g);
        assert!(sims.contains(&c));
        assert!(!sims.contains(&a), "a has no incoming e-edge");
        assert!(!sims.contains(&d), "d has no outgoing e-edge");
    }

    /// Proposition from the paper's related work: simulation cannot
    /// distinguish structures isomorphism can (cycles vs long paths).
    #[test]
    fn simulation_folds_cycles() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        // Graph: 2-cycle a <-> b.
        let mut b = GraphBuilder::new(vocab.clone());
        let a = b.add_node(n);
        let c = b.add_node(n);
        b.add_edge(a, c, e);
        b.add_edge(c, a, e);
        let g = b.build();
        // Pattern: 3-cycle.
        let mut pb = PatternBuilder::new(vocab);
        let u0 = pb.node(n);
        let u1 = pb.node(n);
        let u2 = pb.node(n);
        pb.edge(u0, u1, e);
        pb.edge(u1, u2, e);
        pb.edge(u2, u0, e);
        let p = pb.designate_x(u0).build().unwrap();
        let iso = Matcher::new(&g, MatcherConfig::vf2()).images(&p, u0);
        assert!(iso.is_empty(), "no injective 3-cycle in a 2-cycle");
        let sim = simulation_images(&p, &g);
        assert_eq!(sim.len(), 2, "simulation folds the 3-cycle onto the 2-cycle");
    }
}
