//! The tentpole claim of the delta-graph design, pinned from the
//! matcher's side: `gpar_iso` runs **unmodified** over the overlay view.
//! A d-ball site extracted from a [`DeltaGraph`] (pending inserts and
//! relabels, never compacted) is a plain CSR [`gpar_graph::Graph`] with
//! the exact invariants the matcher's hot path relies on — sorted
//! adjacency runs, label-partitioned node index — and every engine
//! returns bit-identical results on it and on the same ball extracted
//! from the fully materialized graph.

use gpar_graph::{d_neighborhood, DeltaGraph, GraphBuilder, GraphUpdate, GraphView, NodeId, Vocab};
use gpar_iso::{Matcher, MatcherConfig};
use gpar_pattern::PatternBuilder;
use std::sync::Arc;

#[test]
fn engines_agree_on_overlay_and_compacted_sites() {
    let vocab = Vocab::new();
    let cust = vocab.intern("cust");
    let rest = vocab.intern("rest");
    let (like, friend) = (vocab.intern("like"), vocab.intern("friend"));

    // Base: two custs, one likes a restaurant.
    let mut b = GraphBuilder::new(vocab.clone());
    let c0 = b.add_node(cust);
    let c1 = b.add_node(cust);
    let r0 = b.add_node(rest);
    b.add_edge(c0, r0, like);
    let base = Arc::new(b.build());

    // Overlay: a friendship ring, a new cust, a new restaurant the new
    // cust likes, and a relabel that flips a rest into a cust.
    let mut delta = DeltaGraph::new(base);
    let applied = delta.apply(&GraphUpdate {
        new_nodes: vec![cust, rest],
        new_edges: vec![
            (c0, c1, friend),
            (c1, NodeId(3), friend),
            (NodeId(3), NodeId(4), like),
            (c1, r0, like),
        ],
        relabels: vec![(r0, cust)],
    });
    assert_eq!(applied.assigned, vec![NodeId(3), NodeId(4)]);
    let compacted = delta.compact();

    // Pattern: x:cust -[friend]-> x2:cust -[like]-> y:rest.
    let mut pb = PatternBuilder::new(vocab);
    let x = pb.node(cust);
    let x2 = pb.node(cust);
    let y = pb.node(rest);
    pb.edge(x, x2, friend);
    pb.edge(x2, y, like);
    let q = pb.designate(x, y).build().unwrap();

    for center in (0..GraphView::node_count(&delta) as u32).map(NodeId) {
        let (via_overlay, lo) = d_neighborhood(&delta, center, 2);
        let (via_csr, lc) = d_neighborhood(&compacted, center, 2);
        assert_eq!(via_overlay.to_global, via_csr.to_global, "same ball at {center}");
        // The overlay-extracted site satisfies the matcher's invariants.
        for v in via_overlay.graph.nodes() {
            assert!(via_overlay.graph.out_edges(v).is_sorted());
            assert!(via_overlay.graph.in_edges(v).is_sorted());
        }
        for cfg in [MatcherConfig::vf2(), MatcherConfig::degree_ordered(), MatcherConfig::guided()]
        {
            let mo = Matcher::new(&via_overlay.graph, cfg);
            let mc = Matcher::new(&via_csr.graph, cfg);
            assert_eq!(
                mo.exists_anchored(&q, q.x(), lo),
                mc.exists_anchored(&q, q.x(), lc),
                "existence diverged at {center} ({:?})",
                cfg.kind
            );
            assert_eq!(
                mo.count_anchored(&q, q.x(), lo, None),
                mc.count_anchored(&q, q.x(), lc, None),
                "count diverged at {center} ({:?})",
                cfg.kind
            );
        }
    }

    // And the overlay actually changed the answer: c1 now matches via
    // the inserted friendship to the new cust, who likes the new rest
    // (c1 -[friend]-> v3 -[like]-> v4).
    let (site, local) = d_neighborhood(&compacted, c1, 2);
    assert!(Matcher::new(&site.graph, MatcherConfig::vf2()).exists_anchored(&q, q.x(), local));
}
