//! The tentpole claim of the delta-graph design, pinned from the
//! matcher's side: `gpar_iso` runs **unmodified** over the overlay view.
//! A d-ball site extracted from a [`DeltaGraph`] (pending inserts,
//! relabels *and deletions*, never compacted) is a plain CSR
//! [`gpar_graph::Graph`] with the exact invariants the matcher's hot path
//! relies on — sorted adjacency runs, label-partitioned node index — and
//! every engine returns bit-identical results on it and on the same ball
//! extracted from the fully materialized graph.

use gpar_graph::{
    d_neighborhood, DeltaGraph, GraphBuilder, GraphUpdate, GraphView, NodeId, NodeRemap, Vocab,
};
use gpar_iso::{Matcher, MatcherConfig};
use gpar_pattern::{Pattern, PatternBuilder};
use std::sync::Arc;

/// For every center of `delta`, extract the d-ball site from the overlay
/// and from the independently compacted CSR (translating the center when
/// removals re-densified ids) and assert every engine agrees bit-for-bit.
fn assert_sites_agree(delta: &DeltaGraph, q: &Pattern, d: u32) {
    let compacted = delta.compact();
    let remap = compacted.remap;
    let compacted = compacted.graph;
    let translate = |c: NodeId| -> Option<NodeId> {
        match &remap {
            None => Some(c),
            Some(r) => r.get(c),
        }
    };
    let back: Option<Vec<NodeId>> = remap.as_ref().map(NodeRemap::inverse);
    for center in delta.nodes() {
        let cc = translate(center).expect("live nodes survive compaction");
        let (via_overlay, lo) = d_neighborhood(delta, center, d);
        let (via_csr, lc) = d_neighborhood(&compacted, cc, d);
        let csr_ball_in_old_ids: Vec<NodeId> = match &back {
            None => via_csr.to_global.clone(),
            Some(b) => via_csr.to_global.iter().map(|&v| b[v.index()]).collect(),
        };
        assert_eq!(via_overlay.to_global, csr_ball_in_old_ids, "same ball at {center}");
        // The overlay-extracted site satisfies the matcher's invariants.
        for v in via_overlay.graph.nodes() {
            assert!(via_overlay.graph.out_edges(v).is_sorted());
            assert!(via_overlay.graph.in_edges(v).is_sorted());
        }
        for cfg in [MatcherConfig::vf2(), MatcherConfig::degree_ordered(), MatcherConfig::guided()]
        {
            let mo = Matcher::new(&via_overlay.graph, cfg);
            let mc = Matcher::new(&via_csr.graph, cfg);
            assert_eq!(
                mo.exists_anchored(q, q.x(), lo),
                mc.exists_anchored(q, q.x(), lc),
                "existence diverged at {center} ({:?})",
                cfg.kind
            );
            assert_eq!(
                mo.count_anchored(q, q.x(), lo, None),
                mc.count_anchored(q, q.x(), lc, None),
                "count diverged at {center} ({:?})",
                cfg.kind
            );
        }
    }
}

#[test]
fn engines_agree_on_overlay_and_compacted_sites() {
    let vocab = Vocab::new();
    let cust = vocab.intern("cust");
    let rest = vocab.intern("rest");
    let (like, friend) = (vocab.intern("like"), vocab.intern("friend"));

    // Base: two custs, one likes a restaurant.
    let mut b = GraphBuilder::new(vocab.clone());
    let c0 = b.add_node(cust);
    let c1 = b.add_node(cust);
    let r0 = b.add_node(rest);
    b.add_edge(c0, r0, like);
    let base = Arc::new(b.build());

    // Overlay: a friendship ring, a new cust, a new restaurant the new
    // cust likes, and a relabel that flips a rest into a cust.
    let mut delta = DeltaGraph::new(base);
    let applied = delta.apply(&GraphUpdate {
        new_nodes: vec![cust, rest],
        new_edges: vec![
            (c0, c1, friend),
            (c1, NodeId(3), friend),
            (NodeId(3), NodeId(4), like),
            (c1, r0, like),
        ],
        relabels: vec![(r0, cust)],
        ..Default::default()
    });
    assert_eq!(applied.assigned, vec![NodeId(3), NodeId(4)]);

    // Pattern: x:cust -[friend]-> x2:cust -[like]-> y:rest.
    let mut pb = PatternBuilder::new(vocab);
    let x = pb.node(cust);
    let x2 = pb.node(cust);
    let y = pb.node(rest);
    pb.edge(x, x2, friend);
    pb.edge(x2, y, like);
    let q = pb.designate(x, y).build().unwrap();

    assert_sites_agree(&delta, &q, 2);

    // And the overlay actually changed the answer: c1 now matches via
    // the inserted friendship to the new cust, who likes the new rest
    // (c1 -[friend]-> v3 -[like]-> v4).
    let compacted = delta.compact().graph;
    let (site, local) = d_neighborhood(&compacted, c1, 2);
    assert!(Matcher::new(&site.graph, MatcherConfig::vf2()).exists_anchored(&q, q.x(), local));
}

#[test]
fn engines_agree_on_tombstoned_overlay_and_compacted_sites() {
    let vocab = Vocab::new();
    let cust = vocab.intern("cust");
    let rest = vocab.intern("rest");
    let (like, friend) = (vocab.intern("like"), vocab.intern("friend"));

    // Base: a friendship chain of three custs, each liking a restaurant,
    // plus a cross like from c0 to c2's restaurant.
    let mut b = GraphBuilder::new(vocab.clone());
    let custs: Vec<NodeId> = (0..3).map(|_| b.add_node(cust)).collect();
    let rests: Vec<NodeId> = (0..3).map(|_| b.add_node(rest)).collect();
    for i in 0..3 {
        b.add_edge(custs[i], rests[i], like);
    }
    b.add_edge(custs[0], custs[1], friend);
    b.add_edge(custs[1], custs[2], friend);
    b.add_edge(custs[0], rests[2], like);
    let base = Arc::new(b.build());

    // Pattern: x:cust -[friend]-> x2:cust -[like]-> y:rest.
    let mut pb = PatternBuilder::new(vocab);
    let x = pb.node(cust);
    let x2 = pb.node(cust);
    let y = pb.node(rest);
    pb.edge(x, x2, friend);
    pb.edge(x2, y, like);
    let q = pb.designate(x, y).build().unwrap();

    // Mixed overlay: tombstone a base edge (c1's like), delete and
    // re-insert another (net no-op through a tombstone round-trip), add a
    // replacement like, and remove a whole node (r2 — cascading both its
    // in-edges).
    let mut delta = DeltaGraph::new(base.clone());
    delta.apply(&GraphUpdate {
        del_edges: vec![(custs[1], rests[1], like), (custs[0], custs[1], friend)],
        new_edges: vec![(custs[0], custs[1], friend), (custs[1], rests[0], like)],
        del_nodes: vec![rests[2]],
        ..Default::default()
    });
    assert!(delta.tomb_edge_count() > 0, "the overlay really is tombstoned");
    assert_eq!(delta.removed_node_count(), 1);
    assert_sites_agree(&delta, &q, 2);

    // The deletion changed answers: c1 -friend-> c2 -like-> r2 is gone
    // (r2 removed), but c0 -friend-> c1 -like-> r0 newly matches.
    let compacted = delta.compact();
    let remap = compacted.remap.expect("node removal remaps");
    let (site, local) = d_neighborhood(&compacted.graph, remap.get(custs[0]).unwrap(), 2);
    assert!(Matcher::new(&site.graph, MatcherConfig::vf2()).exists_anchored(&q, q.x(), local));
    let (site, local) = d_neighborhood(&compacted.graph, remap.get(custs[1]).unwrap(), 2);
    assert!(!Matcher::new(&site.graph, MatcherConfig::vf2()).exists_anchored(&q, q.x(), local));
}
