//! Model-checking suites for the workspace's lock-free protocols live in
//! `tests/` (see `tests/*.rs`); each suite runs a protocol under
//! [`gpar_model`](../gpar_model/index.html)'s exhaustive scheduler and
//! asserts its invariant over every explored interleaving. This library
//! target is intentionally empty — the crate exists so `cargo test -p
//! gpar-model-tests` has somewhere to hang the suites, with every
//! protocol crate pulled in as a *dev*-dependency so the `model` feature
//! never unifies into release builds.
