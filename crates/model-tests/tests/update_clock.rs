//! Model-checks the serve [`UpdateClock`]'s staleness-wait protocol: a
//! reader parks in `wait_within` while the oldest accepted batch is too
//! old, and the writer's `settle` must wake it.
//!
//! The invariants, asserted over **every** explored interleaving:
//!
//! * no missed wakeup — every schedule completes, including the one
//!   where `settle` lands between the waiter's predicate check and its
//!   park (the classic lost-notify window);
//! * liveness comes from the condvar, not the 20ms re-check:
//!   [`Report::timeout_rescues`] stays zero, i.e. no explored schedule
//!   ever needed a timed wait to fire to make progress.
//!
//! [`UpdateClock`]: gpar_serve::clock::UpdateClock
//! [`Report::timeout_rescues`]: gpar_model::Report

use gpar_serve::clock::UpdateClock;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn settle_always_wakes_a_staleness_waiter() {
    let report = gpar_model::model(|| {
        let clock = Arc::new(UpdateClock::default());
        clock.submit();

        let settler = {
            let clock = Arc::clone(&clock);
            gpar_model::thread::spawn(move || clock.settle(1))
        };

        // `ZERO` bound: the pending batch is always too old, so this
        // returns only once the settler has retired it.
        clock.wait_within::<()>(Duration::ZERO, || Ok(())).expect("check never errors");
        assert!(!clock.has_pending(), "wait returned with the frontier settled");
        settler.join();
    });
    assert!(report.complete, "exploration exhausted the schedule space");
    assert!(report.executions > 1, "racy protocol must have more than one schedule");
    assert_eq!(
        report.timeout_rescues, 0,
        "the condvar, not the timeout re-check, provides liveness"
    );
}

#[test]
fn settle_wakes_every_waiter_not_just_one() {
    let report = gpar_model::model(|| {
        let clock = Arc::new(UpdateClock::default());
        clock.submit();

        let other = {
            let clock = Arc::clone(&clock);
            gpar_model::thread::spawn(move || {
                clock.wait_within::<()>(Duration::ZERO, || Ok(())).expect("check never errors");
            })
        };
        let settler = {
            let clock = Arc::clone(&clock);
            gpar_model::thread::spawn(move || clock.settle(1))
        };

        clock.wait_within::<()>(Duration::ZERO, || Ok(())).expect("check never errors");
        other.join();
        settler.join();
        assert!(!clock.has_pending());
    });
    assert!(report.complete);
    assert!(report.executions > 1);
    assert_eq!(report.timeout_rescues, 0, "notify_all reached both waiters in every schedule");
}
