//! Model-checks the arc-swap shim's borrow-ledger protocol: readers
//! register borrows in the packed word, displacing writers settle them
//! into the box's ledger, and the unique zero crossing frees the box.
//!
//! The invariants, asserted over **every** explored interleaving:
//!
//! * no lost borrow / premature free — a value a reader loaded is alive
//!   for as long as the reader holds it;
//! * exactly-once reclamation — every displaced generation is dropped
//!   exactly once (a double settlement would double-free, a lost one
//!   would leak), checked by drop-counting every generation;
//! * generation monotonicity — consecutive loads never observe the
//!   published pointer moving backwards.

use arc_swap::ArcSwap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A generation payload whose drop is counted. The counter is a plain
/// std atomic on purpose: it is harness bookkeeping, not protocol state,
/// so it must not add scheduling points.
struct Tracked {
    gen: usize,
    drops: Arc<AtomicUsize>,
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

fn tracked(gen: usize, drops: &Arc<AtomicUsize>) -> Arc<Tracked> {
    Arc::new(Tracked { gen, drops: Arc::clone(drops) })
}

#[test]
fn reader_vs_writer_no_premature_free_and_exact_reclamation() {
    let report = gpar_model::model(|| {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(ArcSwap::new(tracked(0, &drops)));

        let reader = {
            let cell = Arc::clone(&cell);
            gpar_model::thread::spawn(move || {
                let a = cell.load_full();
                let g1 = a.gen;
                drop(a);
                let b = cell.load_full();
                (g1, b.gen)
            })
        };

        let old = cell.swap(tracked(1, &drops));
        assert_eq!(old.gen, 0, "swap returns the displaced generation");
        drop(old);

        let (g1, g2) = reader.join();
        assert!(g1 <= g2, "loads observed the cell moving backwards: {g1} then {g2}");

        // Both loads returned live values (their `gen` reads above did
        // not touch freed memory), and once the cell itself goes away
        // every generation has been dropped exactly once.
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 2, "each generation reclaimed exactly once");
    });
    assert!(report.complete, "exploration exhausted the schedule space");
    assert!(report.executions > 1, "racy protocol must have more than one schedule");
}

#[test]
fn concurrent_swaps_settle_each_displaced_box_exactly_once() {
    let report = gpar_model::model(|| {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(ArcSwap::new(tracked(0, &drops)));

        let writer = {
            let cell = Arc::clone(&cell);
            let drops = Arc::clone(&drops);
            gpar_model::thread::spawn(move || {
                drop(cell.swap(tracked(1, &drops)));
            })
        };
        drop(cell.swap(tracked(2, &drops)));
        writer.join();

        let last = cell.load_full().gen;
        assert!(last == 1 || last == 2, "final value is one of the swapped-in generations");

        // Three generations were installed; two were displaced (order
        // depends on the schedule) and the survivor dies with the cell.
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 3, "no generation leaked or double-freed");
    });
    assert!(report.complete);
    assert!(report.executions > 1);
}
