//! Model-checks the metrics registry's seqlock: a [`WriteTxn`] holds the
//! epoch odd while it applies a multi-counter transaction, and
//! `counters_stable` retries its sweep until it reads an unchanged even
//! epoch.
//!
//! The invariant, asserted over **every** explored interleaving: a
//! stable read never observes a torn transaction — it sees either none
//! or all of the counters a transaction writes, never a strict subset.
//!
//! [`WriteTxn`]: gpar_obs::WriteTxn

use gpar_obs::{Counter, MetricsRegistry};
use std::sync::Arc;

const UPDATES: usize = Counter::Updates as usize;
const INVALIDATIONS: usize = Counter::CacheInvalidations as usize;

#[test]
fn stable_read_never_sees_a_torn_txn() {
    let report = gpar_model::model(|| {
        let reg = Arc::new(MetricsRegistry::new(1));
        let reader = {
            let reg = Arc::clone(&reg);
            gpar_model::thread::spawn(move || reg.counters_stable())
        };

        // One transaction, two counters: the seqlock's whole point is
        // that these become visible together or not at all.
        {
            let txn = reg.write_txn();
            txn.incr(0, Counter::Updates);
            txn.add(0, Counter::CacheInvalidations, 3);
        }

        let seen = reader.join();
        let (u, inv) = (seen[UPDATES], seen[INVALIDATIONS]);
        assert!(
            (u, inv) == (0, 0) || (u, inv) == (1, 3),
            "torn transaction observed: updates={u} invalidations={inv}"
        );

        // After the txn epoch settles, the full write is visible.
        let after = reg.counters_stable();
        assert_eq!((after[UPDATES], after[INVALIDATIONS]), (1, 3));
    });
    assert!(report.complete, "exploration exhausted the schedule space");
    assert!(report.executions > 1, "racy protocol must have more than one schedule");
}

#[test]
fn back_to_back_txns_are_each_atomic() {
    let report = gpar_model::model(|| {
        let reg = Arc::new(MetricsRegistry::new(1));
        let writer = {
            let reg = Arc::clone(&reg);
            gpar_model::thread::spawn(move || {
                for _ in 0..2 {
                    let txn = reg.write_txn();
                    txn.incr(0, Counter::Updates);
                    txn.add(0, Counter::CacheInvalidations, 3);
                }
            })
        };

        let seen = reg.counters_stable();
        let (u, inv) = (seen[UPDATES], seen[INVALIDATIONS]);
        assert_eq!(inv, 3 * u, "reader caught a transaction half-applied: {u}/{inv}");

        writer.join();
        let after = reg.counters_stable();
        assert_eq!((after[UPDATES], after[INVALIDATIONS]), (2, 6));
    });
    assert!(report.complete);
    assert!(report.executions > 1);
}
