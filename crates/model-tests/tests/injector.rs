//! Model-checks the exec [`Injector`]'s mutex/condvar queue protocol.
//!
//! The invariants, asserted over **every** explored interleaving:
//!
//! * no lost job, no double-pop — the multiset of popped items equals
//!   the multiset of successfully pushed items;
//! * `close` wakes every blocked popper (a missed wakeup here would
//!   deadlock the schedule and the checker would report it);
//! * `close_and_drain` leaves nothing stranded — every accepted item is
//!   delivered to exactly one of: a popper, or the drain.

use gpar_exec::{Injector, PushError};
use std::sync::Arc;

#[test]
fn concurrent_pushes_and_pops_deliver_each_item_exactly_once() {
    let report = gpar_model::model(|| {
        let inj: Arc<Injector<u32>> = Arc::new(Injector::new());

        let producer = {
            let inj = Arc::clone(&inj);
            gpar_model::thread::spawn(move || inj.push(1).expect("open injector accepts"))
        };
        let consumer = {
            let inj = Arc::clone(&inj);
            gpar_model::thread::spawn(move || inj.pop().expect("open injector blocks until item"))
        };

        inj.push(2).expect("open injector accepts");
        let mine = inj.pop().expect("open injector blocks until item");

        producer.join();
        let theirs = consumer.join();

        let mut got = [mine, theirs];
        got.sort_unstable();
        assert_eq!(got, [1, 2], "each pushed item popped exactly once");
        assert!(inj.is_empty(), "nothing left behind");
    });
    assert!(report.complete, "exploration exhausted the schedule space");
    assert!(report.executions > 1, "racy protocol must have more than one schedule");
    assert_eq!(report.timeout_rescues, 0, "liveness never leaned on a timeout");
}

#[test]
fn close_wakes_a_blocked_popper() {
    let report = gpar_model::model(|| {
        let inj: Arc<Injector<u32>> = Arc::new(Injector::new());
        let consumer = {
            let inj = Arc::clone(&inj);
            gpar_model::thread::spawn(move || inj.pop())
        };
        // Whether the popper is already parked or not yet, close must
        // reach it; a lost notification would deadlock this schedule.
        inj.close();
        assert_eq!(consumer.join(), None, "closed and drained is the exit signal");
    });
    assert!(report.complete);
    assert!(report.executions > 1);
    assert_eq!(report.timeout_rescues, 0);
}

#[test]
fn close_and_drain_strands_nothing() {
    let report = gpar_model::model(|| {
        let inj: Arc<Injector<u32>> = Arc::new(Injector::new());

        // A producer racing the shutdown: each push either lands (and
        // must then come out of the drain or a pop) or is rejected
        // `Closed` (and must NOT come out anywhere).
        let producer = {
            let inj = Arc::clone(&inj);
            gpar_model::thread::spawn(move || {
                let mut accepted = Vec::new();
                for v in [1u32, 2] {
                    match inj.push(v) {
                        Ok(()) => accepted.push(v),
                        Err(PushError::Closed(rej)) => assert_eq!(rej, v),
                        Err(e) => panic!("unbounded injector rejected oddly: {e:?}"),
                    }
                }
                accepted
            })
        };

        let mut delivered = inj.close_and_drain();
        // The producer may interleave a push between `close` marking the
        // queue and this late drain; sweep again until it has exited.
        let accepted = producer.join();
        delivered.extend(inj.close_and_drain());

        delivered.sort_unstable();
        assert_eq!(delivered, accepted, "accepted and delivered multisets match");
        assert_eq!(inj.pop(), None, "closed injector yields nothing afterwards");
        assert!(inj.is_empty());
    });
    assert!(report.complete);
    assert!(report.executions > 1);
    assert_eq!(report.timeout_rescues, 0);
}
