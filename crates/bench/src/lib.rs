//! Shared harness for regenerating the paper's evaluation (§6).
//!
//! The `figures` binary sweeps the same parameters as Figures 5(a)–(o) and
//! the Exp-2 precision table; the Criterion benches under `benches/`
//! micro-benchmark the same code paths at fixed small scales. Both build
//! on the helpers here: deterministic workload construction, timed runs,
//! and a table printer that shows the paper's reported numbers next to the
//! measured ones.

use gpar_core::{Gpar, Predicate};
use gpar_datagen::{
    generate_rules, gplus_like, pokec_like, synthetic, RuleGenConfig, SocialGraph, SyntheticConfig,
};
use gpar_eip::{identify, EipAlgorithm, EipConfig};
use gpar_graph::Graph;
use gpar_mine::{DMine, DmineConfig, MineOpts, MineResult};
use std::time::{Duration, Instant};

/// One measured series: a label plus `(x, seconds)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. `DMine`, `disVF2`).
    pub label: String,
    /// `(x-axis value, seconds)` pairs.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), points: Vec::new() }
    }

    /// Appends one point.
    pub fn push(&mut self, x: impl ToString, seconds: f64) {
        self.points.push((x.to_string(), seconds));
    }

    /// Speedup between the first and last point (the paper reports e.g.
    /// "3.2× faster when n grows from 4 to 20").
    pub fn endpoint_speedup(&self) -> Option<f64> {
        let first = self.points.first()?.1;
        let last = self.points.last()?.1;
        if last > 0.0 {
            Some(first / last)
        } else {
            None
        }
    }
}

/// Prints a figure as a Markdown table with a paper-shape annotation.
pub fn print_figure(id: &str, title: &str, paper_note: &str, x_name: &str, series: &[Series]) {
    println!("\n### {id} — {title}");
    println!("paper: {paper_note}\n");
    print!("| {x_name} |");
    for s in series {
        print!(" {} (s) |", s.label);
    }
    println!();
    print!("|---|");
    for _ in series {
        print!("---|");
    }
    println!();
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for r in 0..rows {
        let x =
            series.iter().find_map(|s| s.points.get(r).map(|(x, _)| x.clone())).unwrap_or_default();
        print!("| {x} |");
        for s in series {
            match s.points.get(r) {
                Some((_, secs)) => print!(" {secs:.3} |"),
                None => print!(" – |"),
            }
        }
        println!();
    }
    for s in series {
        if let Some(sp) = s.endpoint_speedup() {
            println!("measured {}: first/last = {sp:.2}×", s.label);
        }
    }
}

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Deterministic workloads at a common scale factor.
pub struct Workloads;

impl Workloads {
    /// The Pokec stand-in.
    pub fn pokec(users: usize) -> SocialGraph {
        pokec_like(users, 0xD0C)
    }

    /// The Google+ stand-in.
    pub fn gplus(users: usize) -> SocialGraph {
        gplus_like(users, 0xD0D)
    }

    /// The paper's synthetic generator at `(|V|, |E|)`.
    pub fn synth(nodes: usize, edges: usize) -> Graph {
        synthetic(&SyntheticConfig::sized(nodes, edges, 0xD0E))
    }

    /// A rule set Σ of `count` satisfiable GPARs with `|R| = (5, 8)` for a
    /// social graph's predicate (the paper's EIP workload).
    pub fn sigma(sg: &SocialGraph, family: &str, count: usize, d: u32) -> Vec<Gpar> {
        let pred = sg.schema.predicate(family, 0).expect("family exists in schema");
        generate_rules(
            &sg.graph,
            &pred,
            &RuleGenConfig {
                count,
                pattern_nodes: 5,
                pattern_edges: 8,
                max_radius: d,
                seed: 0x51D,
            },
        )
    }

    /// A Σ for a synthetic graph: derive a predicate from the most common
    /// node/edge labels, then generate rules around it.
    pub fn synth_sigma(g: &Graph, count: usize, d: u32) -> (Predicate, Vec<Gpar>) {
        let pred = synth_predicate(g);
        let rules = generate_rules(
            g,
            &pred,
            &RuleGenConfig {
                count,
                pattern_nodes: 4,
                pattern_edges: 5,
                max_radius: d,
                seed: 0x51E,
            },
        );
        (pred, rules)
    }
}

/// Picks the most frequent `(src-label, edge-label, dst-label)` triple of a
/// synthetic graph as the mining/EIP predicate.
pub fn synth_predicate(g: &Graph) -> Predicate {
    let top = g.frequent_edge_patterns(1);
    let ((sl, el, dl), _) = top.first().expect("graph has edges");
    Predicate::new(gpar_pattern::NodeCond::Label(*sl), *el, gpar_pattern::NodeCond::Label(*dl))
}

/// Runs one EIP configuration, returning the **simulated n-processor
/// time** (partitioning/n + slowest-worker critical path + sequential
/// assembly). On multi-core hosts this tracks wall-clock; on the paper's
/// cluster it is the definition of `T(|G|, |Σ|, n)`. See DESIGN.md
/// ("Substitutions").
pub fn run_eip(g: &Graph, sigma: &[Gpar], algo: EipAlgorithm, workers: usize, d: u32) -> f64 {
    let cfg = EipConfig { eta: 1.5, d: Some(d), ..EipConfig::new(algo, workers) };
    let res = identify(g, sigma, &cfg).expect("valid Σ");
    res.simulated_parallel_time().as_secs_f64()
}

/// Runs one DMine configuration, returning `(simulated seconds, result)`
/// (same simulation as [`run_eip`]).
pub fn run_dmine(
    g: &Graph,
    pred: &Predicate,
    workers: usize,
    sigma: u64,
    opts: MineOpts,
) -> (f64, MineResult) {
    let cfg = DmineConfig {
        k: 10,
        sigma,
        d: 2,
        lambda: 0.5,
        workers,
        max_rounds: 2,
        opts,
        ..Default::default()
    };
    let res = DMine::new(cfg).run(g, pred);
    (res.simulated_parallel_time().as_secs_f64(), res)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_speedup() {
        let mut s = Series::new("x");
        s.push(4, 2.0);
        s.push(20, 0.5);
        assert_eq!(s.endpoint_speedup(), Some(4.0));
    }

    #[test]
    fn workloads_build() {
        let sg = Workloads::pokec(300);
        assert!(sg.graph.node_count() > 300);
        let g = Workloads::synth(500, 1000);
        let pred = synth_predicate(&g);
        let stats = gpar_core::q_stats(&g, &pred);
        assert!(stats.candidates() > 0);
    }
}
