//! Open-loop load harness: replays a deterministic seeded workload —
//! mixed identify / top-rules / update-batch traffic with hot-key Zipf
//! skew — against a live [`ServeEngine`] and writes an SLO report
//! (p50/p99/p999 per request class, stage breakdown, measured
//! saturation QPS) as JSON.
//!
//! The generator is **open-loop**: arrivals follow a seeded Poisson
//! schedule computed up front, and every request is stamped with its
//! *intended* arrival time (`Ts::plus` off one phase epoch), not the
//! time the dispatcher got around to submitting it. A backlogged engine
//! therefore shows up as queue-wait and tail latency instead of quietly
//! throttling the offered rate (coordinated omission). Latency is
//! recorded engine-side into the merged obs histograms; the harness
//! reads per-phase deltas via [`MetricsSnapshot::minus`], so the report
//! reflects exactly the traffic of each phase.
//!
//! Saturation is measured by re-running the phase at geometrically
//! increasing offered rates until completions can no longer keep up
//! (achieved < 90% of offered); the highest achieved rate is reported.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p gpar-bench --bin load_harness             # full (pokec-500)
//! cargo run --release -p gpar-bench --bin load_harness -- --quick  # ~10 s CI smoke
//! cargo run --release -p gpar-bench --bin load_harness -- \
//!     --qps 400 --duration-secs 5 --slo-p99-ms 20 --out report.json
//! cargo run --release -p gpar-bench --bin load_harness -- \
//!     --deadline-ms 250 --queue-cap 256 --fail-on-slo   # overload profile
//! cargo run --release -p gpar-bench --bin load_harness -- \
//!     --write-heavy --staleness-ms 50                   # update-dominated
//! cargo run --release -p gpar-bench --bin load_harness -- \
//!     --shards 4                                        # sharded front
//! ```
//!
//! `--shards N` serves through the [`ShardedEngine`] scatter/gather
//! front instead of a single engine: queries fan out to N d-ball halo
//! shards and merge exact global statistics; updates broadcast to every
//! shard. The report then adds a `shards` block — per-shard scatter
//! latency, update replication, and plan balance next to the merged
//! end-to-end tails (which the `classes` block measures at the front).
//!
//! Overload knobs: `--deadline-ms` arms a per-request latency budget
//! (expired requests answer `DeadlineExceeded` instead of completing
//! late), `--staleness-ms` lets identify queries accept snapshot answers
//! of bounded publish lag while accepted updates are still in flight,
//! `--queue-cap` bounds the engine's admission queue (overflow answers
//! `Shed` at submit time), and `--fail-on-slo` turns an SLO miss into
//! exit code 1 for CI. Every reply is classified (`ok` / `shed` /
//! `deadline_exceeded` / `stale` / `failed`) and reported per phase —
//! under overload the error budget moves into typed sheds and timeouts,
//! never silent drops.
//!
//! Write-side knobs: `--update-rate` sets churn ticks per second,
//! `--update-burst` submits that many batches back-to-back at every tick
//! (the writer coalesces whatever it finds queued into one net snapshot
//! generation), and `--write-heavy` is the preset for both (100 ticks/s
//! × 8-deep bursts). The report's `write_pipeline` block shows how much
//! of the burst the coalescer absorbed (`coalesce_ratio`) and the
//! snapshot-lag percentiles — submission-to-publish age per accepted
//! batch — next to the read tails they were bought with.

use gpar_bench::Workloads;
use gpar_core::Predicate;
use gpar_datagen::{generate_rules, RuleGenConfig};
use gpar_graph::{Label, NodeId};
use gpar_serve::{
    Counter, GraphUpdate, HistKind, IdentifyRequest, IdentifyResponse, MetricsSnapshot, QueryError,
    QueryOpts, RuleCatalog, RuleInfo, ServeConfig, ServeEngine, ShardedEngine, Ts, UpdateError,
    UpdateReport,
};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Distribution, Zipf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A uniform sample in `[0, 1)` with 53 mantissa bits.
fn unit(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Sleeps (coarsely, then spins) until `deadline`; returns immediately
/// if it is already past. Cancellable via `stop`.
fn wait_until(deadline: Instant, stop: Option<&AtomicBool>) {
    loop {
        if let Some(s) = stop {
            // ordering: Relaxed — `stop` is a lone cancellation flag; no
            // data is published through it.
            if s.load(Ordering::Relaxed) {
                return;
            }
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > Duration::from_millis(2) {
            // Leave the tail for the spin so overshoot stays small.
            std::thread::sleep((left - Duration::from_millis(1)).min(Duration::from_millis(5)));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// The serving backend under load: one [`ServeEngine`], or a
/// [`ShardedEngine`] scatter/gather front (`--shards N`). Both expose
/// the same open-loop submit surface; the only asymmetry is where the
/// measurements live, so the wrapper hands out two snapshots: the
/// **query** side (end-to-end Identify / TopRules / Update latencies —
/// the front's registry in sharded mode) and the **write** side
/// (update-pipeline counters, snapshot lag, and stage timings — shard
/// 0, the representative replica, in sharded mode; every shard accepts
/// the same update stream).
enum Serving {
    Single(ServeEngine),
    Sharded(ShardedEngine),
}

impl Serving {
    fn identify(
        &self,
        pred: Predicate,
        candidates: Option<Vec<NodeId>>,
    ) -> Result<IdentifyResponse, QueryError> {
        match self {
            Serving::Single(e) => e.identify(pred, candidates),
            Serving::Sharded(e) => e.identify(pred, candidates),
        }
    }

    fn submit_identify_from(
        &self,
        req: IdentifyRequest,
        scheduled: Ts,
    ) -> Result<Receiver<Result<IdentifyResponse, QueryError>>, QueryError> {
        match self {
            Serving::Single(e) => e.submit_identify_from(req, scheduled),
            Serving::Sharded(e) => e.submit_identify_from(req, scheduled),
        }
    }

    fn submit_top_rules_from(
        &self,
        pred: Predicate,
        k: usize,
        opts: QueryOpts,
        scheduled: Ts,
    ) -> Result<Receiver<Result<Vec<RuleInfo>, QueryError>>, QueryError> {
        match self {
            Serving::Single(e) => e.submit_top_rules_from(pred, k, opts, scheduled),
            Serving::Sharded(e) => e.submit_top_rules_from(pred, k, opts, scheduled),
        }
    }

    fn submit_update_from(
        &self,
        update: GraphUpdate,
        scheduled: Ts,
    ) -> Result<Receiver<Result<UpdateReport, UpdateError>>, UpdateError> {
        match self {
            Serving::Single(e) => e.submit_update_from(update, scheduled),
            Serving::Sharded(e) => e.submit_update_from(update, scheduled),
        }
    }

    fn apply_update(&self, update: &GraphUpdate) -> Result<UpdateReport, UpdateError> {
        match self {
            Serving::Single(e) => e.apply_update(update),
            Serving::Sharded(e) => e.apply_update(update),
        }
    }

    /// `(query-side, write-side)` snapshots; identical for the single
    /// engine (one registry holds everything).
    fn snapshots(&self) -> (MetricsSnapshot, MetricsSnapshot) {
        match self {
            Serving::Single(e) => {
                let m = e.metrics();
                (m.clone(), m)
            }
            Serving::Sharded(e) => (e.front_metrics(), e.shard_metrics(0)),
        }
    }
}

/// One request class's latency summary over a phase delta.
struct ClassReport {
    name: &'static str,
    count: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
}

fn class_report(delta: &MetricsSnapshot, name: &'static str, kind: HistKind) -> ClassReport {
    let h = delta.hist(kind);
    ClassReport {
        name,
        count: h.count(),
        p50_ns: h.quantile(0.50).unwrap_or(0),
        p99_ns: h.quantile(0.99).unwrap_or(0),
        p999_ns: h.quantile(0.999).unwrap_or(0),
        max_ns: h.max(),
    }
}

/// Per-phase reply classification: every submitted request lands in
/// exactly one bucket (`shed` at submit time, the rest at drain time).
#[derive(Default, Clone, Copy)]
struct ResponseClasses {
    /// Completed with a live (non-stale) answer.
    ok: u64,
    /// Completed from the warm ledger under an opted-in staleness bound.
    stale: u64,
    /// Rejected at admission (queue full) — a typed `Shed`, not a drop.
    shed: u64,
    /// Answered `DeadlineExceeded` (expired in queue or mid-evaluation).
    deadline_exceeded: u64,
    /// Anything else (panicked query, shutdown, lost reply).
    failed: u64,
}

/// What one phase of offered load measured.
struct PhaseResult {
    offered_qps: f64,
    /// Completions per second of wall time until the last reply landed.
    achieved_qps: f64,
    submitted: u64,
    classes: ResponseClasses,
    updates_applied: u64,
    /// Query-side delta: end-to-end request-class latencies.
    delta: MetricsSnapshot,
    /// Write-side delta: update-pipeline counters, snapshot lag, stages
    /// (shard 0's registry in sharded mode).
    write_delta: MetricsSnapshot,
}

#[derive(Clone, Copy)]
struct PhaseConfig {
    qps: f64,
    duration: Duration,
    /// Hard cap on scheduled queries per phase (bounds memory on the
    /// high-rate sweep steps; the achieved rate is still honest because
    /// it is measured over actual wall time).
    max_requests: u64,
    update_interval: Duration,
    /// Batches submitted back-to-back at every update tick; the writer
    /// coalesces whatever is queued when its window opens.
    update_burst: usize,
    zipf_s: f64,
    identify_frac: f64,
    seed: u64,
    /// Deadline / staleness options stamped on every query.
    opts: QueryOpts,
}

/// Runs one open-loop phase: a dispatcher thread replays the query
/// schedule while an updater thread applies churn batches (delete +
/// reinsert of the most local edge) on its own fixed-interval schedule.
fn run_phase(
    engine: &Serving,
    pred: Predicate,
    pool: &[NodeId],
    churn_edge: (NodeId, NodeId, Label),
    cfg: &PhaseConfig,
) -> PhaseResult {
    let (before_q, before_w) = engine.snapshots();
    let stop = AtomicBool::new(false);
    let epoch_ts = Ts::now();
    let epoch = Instant::now();

    let mut submitted = 0u64;
    let mut classes = ResponseClasses::default();
    let mut updates_applied = 0u64;

    std::thread::scope(|scope| {
        // Updater: bursts of churn batches at a fixed tick, submitted
        // asynchronously and each stamped with its scheduled tick, so
        // coalesce-window and publish wait are charged to the batch as
        // snapshot lag. Replies drain at the end: the open-loop write
        // schedule never throttles itself behind a slow generation.
        let updater = scope.spawn(|| {
            let mut applied = 0u64;
            let mut deleted = false;
            let mut replies = Vec::new();
            for i in 0u64.. {
                let off = cfg.update_interval * (i as u32 + 1);
                // ordering: Relaxed — cancellation flag only, see
                // `wait_until`.
                if off >= cfg.duration || stop.load(Ordering::Relaxed) {
                    break;
                }
                wait_until(epoch + off, Some(&stop));
                // ordering: Relaxed — cancellation flag only.
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                for _ in 0..cfg.update_burst.max(1) {
                    let batch = if deleted {
                        GraphUpdate { new_edges: vec![churn_edge], ..Default::default() }
                    } else {
                        GraphUpdate { del_edges: vec![churn_edge], ..Default::default() }
                    };
                    if let Ok(rx) = engine.submit_update_from(batch, epoch_ts.plus(off)) {
                        replies.push(rx);
                        deleted = !deleted;
                    }
                }
            }
            for rx in replies {
                if matches!(rx.recv(), Ok(Ok(_))) {
                    applied += 1;
                }
            }
            if deleted {
                // Leave the graph as we found it for the next phase.
                let batch = GraphUpdate { new_edges: vec![churn_edge], ..Default::default() };
                let _ = engine.apply_update(&batch);
            }
            applied
        });

        // Dispatcher (this thread): seeded Poisson arrivals, Zipf-skewed
        // candidate subsets, a fixed identify/top-rules mix.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let zipf = Zipf::new(pool.len() as u64, cfg.zipf_s).expect("pool is non-empty");
        let mut identify_rx: Vec<Receiver<_>> = Vec::new();
        let mut top_rules_rx: Vec<Receiver<_>> = Vec::new();
        let mut t = Duration::ZERO;
        loop {
            let dt = -(1.0 - unit(&mut rng)).ln() / cfg.qps;
            t += Duration::from_secs_f64(dt);
            if t >= cfg.duration || submitted >= cfg.max_requests {
                break;
            }
            wait_until(epoch + t, None);
            let scheduled = epoch_ts.plus(t);
            if rng.gen_bool(cfg.identify_frac) {
                let size = rng.gen_range(1usize..=8);
                let mut candidates: Vec<NodeId> =
                    (0..size).map(|_| pool[zipf.sample(&mut rng) as usize - 1]).collect();
                candidates.sort_unstable();
                candidates.dedup();
                let req = IdentifyRequest {
                    predicate: pred,
                    candidates: Some(candidates),
                    opts: cfg.opts,
                };
                match engine.submit_identify_from(req, scheduled) {
                    Ok(rx) => identify_rx.push(rx),
                    Err(QueryError::Shed { .. }) => classes.shed += 1,
                    Err(_) => classes.failed += 1,
                }
            } else {
                match engine.submit_top_rules_from(pred, 4, cfg.opts, scheduled) {
                    Ok(rx) => top_rules_rx.push(rx),
                    Err(QueryError::Shed { .. }) => classes.shed += 1,
                    Err(_) => classes.failed += 1,
                }
            }
            submitted += 1;
        }

        // Drain every reply; traces and histograms are recorded before
        // the reply is sent, so once the last answer is in, so is every
        // measurement. Every admitted request must answer — a blocking
        // `recv` here is the harness-level proof that deadlined or shed
        // work never leaves a dangling waiter.
        for rx in identify_rx {
            match rx.recv() {
                Ok(Ok(resp)) if resp.stale => classes.stale += 1,
                Ok(Ok(_)) => classes.ok += 1,
                Ok(Err(QueryError::DeadlineExceeded { .. })) => classes.deadline_exceeded += 1,
                _ => classes.failed += 1,
            }
        }
        for rx in top_rules_rx {
            match rx.recv() {
                Ok(Ok(_)) => classes.ok += 1,
                Ok(Err(QueryError::DeadlineExceeded { .. })) => classes.deadline_exceeded += 1,
                _ => classes.failed += 1,
            }
        }
        // ordering: Relaxed — the join below is the synchronization point.
        stop.store(true, Ordering::Relaxed);
        updates_applied = updater.join().expect("updater thread");
    });

    let wall = epoch.elapsed().as_secs_f64().max(1e-9);
    let (after_q, after_w) = engine.snapshots();
    let delta = after_q.minus(&before_q);
    let write_delta = after_w.minus(&before_w);
    let completed = delta.hist(HistKind::IdentifyLatency).count()
        + delta.hist(HistKind::TopRulesLatency).count();
    PhaseResult {
        offered_qps: cfg.qps,
        achieved_qps: completed as f64 / wall,
        submitted,
        classes,
        updates_applied,
        delta,
        write_delta,
    }
}

fn json_class(out: &mut String, r: &ClassReport, slo_p99_ms: f64, last: bool) {
    let p99_ms = r.p99_ns as f64 / 1e6;
    let pass = r.count == 0 || p99_ms <= slo_p99_ms;
    out.push_str(&format!(
        "    {{ \"class\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"p999_ns\": {}, \"max_ns\": {}, \"slo_p99_ms\": {:.3}, \"slo_pass\": {} }}{}\n",
        r.name,
        r.count,
        r.p50_ns,
        r.p99_ns,
        r.p999_ns,
        r.max_ns,
        slo_p99_ms,
        pass,
        if last { "" } else { "," }
    ));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let users: usize = flag("--users")
        .map_or(if quick { 120 } else { 500 }, |v| v.parse().expect("--users takes an integer"));
    // Defaults sit below the engine's measured saturation at each scale
    // so the SLO phase reports steady-state tails; the sweep afterwards
    // finds the ceiling.
    let qps: f64 =
        flag("--qps").map_or(if quick { 150.0 } else { 40.0 }, |v| v.parse().expect("--qps"));
    let duration = Duration::from_secs_f64(
        flag("--duration-secs")
            .map_or(if quick { 1.0 } else { 4.0 }, |v| v.parse().expect("--duration-secs")),
    );
    let seed: u64 = flag("--seed").map_or(0x10AD, |v| v.parse().expect("--seed"));
    // Readers are served from published snapshots and never wait on the
    // writer, so the default read bound is tight even under churn;
    // loosen with `--slo-p99-ms` only for saturation experiments.
    let slo_p99_ms: f64 = flag("--slo-p99-ms").map_or(500.0, |v| v.parse().expect("--slo-p99-ms"));
    let slo_update_p99_ms: f64 =
        flag("--slo-update-p99-ms").map_or(1000.0, |v| v.parse().expect("--slo-update-p99-ms"));
    let zipf_s: f64 = flag("--zipf-s").map_or(1.1, |v| v.parse().expect("--zipf-s"));
    let deadline_ms: Option<f64> = flag("--deadline-ms").map(|v| v.parse().expect("--deadline-ms"));
    let staleness_ms: Option<f64> =
        flag("--staleness-ms").map(|v| v.parse().expect("--staleness-ms"));
    let queue_cap: usize = flag("--queue-cap").map_or(0, |v| v.parse().expect("--queue-cap"));
    // 0 = single unsharded engine; N ≥ 1 runs the scatter/gather front
    // over N d-ball halo shards (N = 1 measures pure front overhead).
    let shards_n: usize = flag("--shards").map_or(0, |v| v.parse().expect("--shards"));
    let fail_on_slo = args.iter().any(|a| a == "--fail-on-slo");
    let opts = QueryOpts {
        deadline: deadline_ms.map(|ms| Duration::from_secs_f64(ms / 1e3)),
        staleness: staleness_ms.map(|ms| Duration::from_secs_f64(ms / 1e3)),
    };
    let out_path = flag("--out").unwrap_or_else(|| "SLO_report.json".to_string());
    let sweep_steps: usize = if quick { 3 } else { 6 };
    let max_requests: u64 = if quick { 5_000 } else { 50_000 };
    let identify_frac = 0.85;
    // Write-side shape: `--write-heavy` is the update-dominated preset
    // (100 ticks/s × 8-deep bursts); `--update-rate` / `--update-burst`
    // override either axis independently.
    let write_heavy = args.iter().any(|a| a == "--write-heavy");
    let update_rate: Option<f64> = flag("--update-rate").map(|v| v.parse().expect("--update-rate"));
    let update_burst: usize = flag("--update-burst")
        .map_or(if write_heavy { 8 } else { 1 }, |v| v.parse().expect("--update-burst"));
    let update_interval = match update_rate {
        Some(r) => {
            assert!(r > 0.0, "--update-rate must be positive");
            Duration::from_secs_f64(1.0 / r)
        }
        None if write_heavy => Duration::from_millis(10),
        None => Duration::from_millis(if quick { 150 } else { 500 }),
    };

    // Workload: the Pokec stand-in at `users`, one mined-rule catalog,
    // the hottest candidate centers as the Zipf key pool.
    let sg = Workloads::pokec(users);
    let pred = sg.schema.predicate("music", 0).expect("family");
    let rules = generate_rules(
        &sg.graph,
        &pred,
        &RuleGenConfig { count: 8, pattern_nodes: 5, pattern_edges: 7, max_radius: 2, seed: 3 },
    );
    assert!(!rules.is_empty(), "workload must yield rules");
    let graph = Arc::new(sg.graph.clone());
    let mut catalog = RuleCatalog::new(graph.vocab().clone());
    for r in &rules {
        catalog.insert(Arc::new(r.clone()), gpar_core::ConfStats::default());
    }
    let serve_pred = *rules[0].predicate();
    let serve_cfg = ServeConfig {
        eta: 1.5,
        trace_capacity: 1024,
        queue_capacity: queue_cap,
        ..Default::default()
    };
    let engine = if shards_n > 0 {
        Serving::Sharded(ShardedEngine::new(graph.clone(), &catalog, serve_cfg, shards_n))
    } else {
        Serving::Single(ServeEngine::new(graph.clone(), &catalog, serve_cfg))
    };

    let pool: Vec<NodeId> = {
        let mut v: Vec<NodeId> =
            gpar_core::q_stats(&sg.graph, &serve_pred).positives.into_iter().collect();
        v.sort_unstable();
        v.truncate(64);
        v
    };
    assert!(!pool.is_empty(), "predicate has candidate centers");
    let churn_edge = sg
        .graph
        .nodes()
        .flat_map(|v| sg.graph.out_edges(v).iter().map(move |e| (v, e.node, e.label)))
        .min_by_key(|&(s, d, _)| sg.graph.degree(s) + sg.graph.degree(d))
        .expect("graph has edges");

    // Warm outside the measured phases: the first query pays the warm
    // scan; steady-state tails are what the SLO is about.
    engine.identify(serve_pred, None).expect("warm-up query");

    println!(
        "load_harness: |V|={} |E|={} pool={} qps={qps} dur={:.1}s zipf_s={zipf_s} shards={}",
        sg.graph.node_count(),
        sg.graph.edge_count(),
        pool.len(),
        duration.as_secs_f64(),
        if shards_n > 0 { shards_n.to_string() } else { "off".to_string() }
    );
    if let Serving::Sharded(s) = &engine {
        for i in 0..s.shard_count() {
            println!(
                "  shard {i}: plan_load={} halo={} nodes (d={})",
                s.plan().load(i),
                s.plan().halo(i).len(),
                s.plan().d
            );
        }
    }

    // Phase 1 — the SLO measurement phase at the requested rate.
    let base_cfg = PhaseConfig {
        qps,
        duration,
        max_requests,
        update_interval,
        update_burst,
        zipf_s,
        identify_frac,
        seed,
        opts,
    };
    // Per-shard baselines around the measured phase (sharded mode only).
    let shard_before: Vec<MetricsSnapshot> = match &engine {
        Serving::Sharded(s) => (0..s.shard_count()).map(|i| s.shard_metrics(i)).collect(),
        Serving::Single(_) => Vec::new(),
    };
    let measured = run_phase(&engine, serve_pred, &pool, churn_edge, &base_cfg);
    let shard_deltas: Vec<MetricsSnapshot> = match &engine {
        Serving::Sharded(s) => {
            (0..s.shard_count()).map(|i| s.shard_metrics(i).minus(&shard_before[i])).collect()
        }
        Serving::Single(_) => Vec::new(),
    };
    println!(
        "  replies: ok={} stale={} shed={} deadline_exceeded={} failed={}",
        measured.classes.ok,
        measured.classes.stale,
        measured.classes.shed,
        measured.classes.deadline_exceeded,
        measured.classes.failed
    );
    // Write-pipeline efficiency over the measured phase: how many
    // accepted batches each published generation absorbed, and how long
    // a batch waited from its scheduled tick to its snapshot's publish.
    let wp_updates = measured.write_delta.counter(Counter::Updates);
    let wp_coalesced = measured.write_delta.counter(Counter::UpdatesCoalesced);
    let wp_publishes = measured.write_delta.counter(Counter::SnapshotPublishes);
    let coalesce_ratio = wp_coalesced as f64 / (wp_updates.max(1)) as f64;
    let lag = measured.write_delta.hist(HistKind::SnapshotLag);
    println!(
        "  writes: applied={} publishes={wp_publishes} coalesced={wp_coalesced} \
         (ratio {coalesce_ratio:.2}) snapshot_lag p50={}ns p99={}ns",
        measured.updates_applied,
        lag.quantile(0.50).unwrap_or(0),
        lag.quantile(0.99).unwrap_or(0)
    );
    let classes = [
        class_report(&measured.delta, "identify", HistKind::IdentifyLatency),
        class_report(&measured.delta, "top_rules", HistKind::TopRulesLatency),
        class_report(&measured.delta, "update", HistKind::UpdateLatency),
    ];
    for c in &classes {
        println!(
            "  {:<10} n={:<6} p50={:>9}ns p99={:>10}ns p999={:>10}ns",
            c.name, c.count, c.p50_ns, c.p99_ns, c.p999_ns
        );
    }

    // Phase 2..N — the saturation sweep: same shape, geometrically
    // increasing offered rate, until completions fall behind offers.
    let mut sweep: Vec<(f64, f64)> = vec![(measured.offered_qps, measured.achieved_qps)];
    let mut saturated = measured.achieved_qps < 0.9 * measured.offered_qps;
    let mut offered = qps;
    for step in 1..sweep_steps {
        if saturated {
            break;
        }
        offered *= 4.0;
        let cfg = PhaseConfig { qps: offered, seed: seed.wrapping_add(step as u64), ..base_cfg };
        let r = run_phase(&engine, serve_pred, &pool, churn_edge, &cfg);
        println!(
            "  sweep: offered={:>10.0} qps achieved={:>10.0} qps (n={}, shed={}, dl={}, err={})",
            r.offered_qps,
            r.achieved_qps,
            r.submitted,
            r.classes.shed,
            r.classes.deadline_exceeded,
            r.classes.failed
        );
        sweep.push((r.offered_qps, r.achieved_qps));
        saturated = r.achieved_qps < 0.9 * r.offered_qps;
    }
    let saturation_qps = sweep.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);

    // The latency SLO applies to *admitted and completed* work: shed and
    // deadline-expired requests are accounted separately (they are the
    // mechanism that keeps the tail bounded, not violations of it). Any
    // `failed` reply — a panic, a lost channel — fails the SLO outright.
    let slo_pass = measured.classes.failed == 0
        && classes.iter().all(|c| {
            let bound = if c.name == "update" { slo_update_p99_ms } else { slo_p99_ms };
            c.count == 0 || (c.p99_ns as f64 / 1e6) <= bound
        });

    // --- JSON out (hand-rolled: the workspace is serde-free). ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p gpar-bench --bin load_harness\",\n",
    );
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"graph\": {{ \"users\": {users}, \"nodes\": {}, \"edges\": {} }},\n",
        sg.graph.node_count(),
        sg.graph.edge_count()
    ));
    json.push_str(&format!(
        "  \"workload\": {{ \"qps\": {qps:.1}, \"duration_secs\": {:.3}, \"seed\": {seed}, \
         \"zipf_s\": {zipf_s:.2}, \"identify_frac\": {identify_frac:.2}, \
         \"update_interval_ms\": {}, \"update_burst\": {update_burst}, \
         \"write_heavy\": {write_heavy}, \"pool\": {}, \"submitted\": {}, \
         \"updates_applied\": {} }},\n",
        duration.as_secs_f64(),
        update_interval.as_millis(),
        pool.len(),
        measured.submitted,
        measured.updates_applied
    ));
    json.push_str(&format!(
        "  \"write_pipeline\": {{ \"updates\": {wp_updates}, \"coalesced\": {wp_coalesced}, \
         \"coalesce_ratio\": {coalesce_ratio:.4}, \"snapshot_publishes\": {wp_publishes}, \
         \"snapshot_lag\": {{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"p999_ns\": {}, \"max_ns\": {} }} }},\n",
        lag.count(),
        lag.quantile(0.50).unwrap_or(0),
        lag.quantile(0.99).unwrap_or(0),
        lag.quantile(0.999).unwrap_or(0),
        lag.max()
    ));
    // Sharded mode: per-shard scatter activity and write replication
    // next to the merged (front, end-to-end) latencies. `shard_query`
    // is each shard's ledger-read latency; the merged numbers are the
    // same `classes` block above, repeated here so the shard report is
    // self-contained.
    if let Serving::Sharded(s) = &engine {
        json.push_str(&format!(
            "  \"shards\": {{ \"n\": {}, \"halo_d\": {}, \"merged\": {{ \
             \"identify_p99_ns\": {}, \"top_rules_p99_ns\": {}, \"update_p99_ns\": {} }}, \
             \"per_shard\": [\n",
            s.shard_count(),
            s.plan().d,
            measured.delta.hist(HistKind::IdentifyLatency).quantile(0.99).unwrap_or(0),
            measured.delta.hist(HistKind::TopRulesLatency).quantile(0.99).unwrap_or(0),
            measured.delta.hist(HistKind::UpdateLatency).quantile(0.99).unwrap_or(0),
        ));
        for (i, d) in shard_deltas.iter().enumerate() {
            let sq = d.hist(HistKind::ShardQueryLatency);
            json.push_str(&format!(
                "    {{ \"shard\": {i}, \"plan_load\": {}, \"halo\": {}, \"updates\": {}, \
                 \"snapshot_publishes\": {}, \"shard_query\": {{ \"count\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {} }} }}{}\n",
                s.plan().load(i),
                s.plan().halo(i).len(),
                d.counter(Counter::Updates),
                d.counter(Counter::SnapshotPublishes),
                sq.count(),
                sq.quantile(0.50).unwrap_or(0),
                sq.quantile(0.99).unwrap_or(0),
                if i + 1 == shard_deltas.len() { "" } else { "," }
            ));
        }
        json.push_str("  ] },\n");
    }
    json.push_str(&format!(
        "  \"robustness\": {{ \"deadline_ms\": {}, \"staleness_ms\": {}, \"queue_cap\": {} }},\n",
        deadline_ms.map_or("null".into(), |v| format!("{v:.1}")),
        staleness_ms.map_or("null".into(), |v| format!("{v:.1}")),
        queue_cap
    ));
    json.push_str(&format!(
        "  \"response_classes\": {{ \"ok\": {}, \"stale\": {}, \"shed\": {}, \
         \"deadline_exceeded\": {}, \"failed\": {} }},\n",
        measured.classes.ok,
        measured.classes.stale,
        measured.classes.shed,
        measured.classes.deadline_exceeded,
        measured.classes.failed
    ));
    json.push_str("  \"classes\": [\n");
    for (i, c) in classes.iter().enumerate() {
        let bound = if c.name == "update" { slo_update_p99_ms } else { slo_p99_ms };
        json_class(&mut json, c, bound, i + 1 == classes.len());
    }
    json.push_str("  ],\n");
    json.push_str("  \"stages\": [\n");
    let stage_kinds = [
        HistKind::QueueWait,
        HistKind::CacheLookup,
        HistKind::CandidatePrune,
        HistKind::IsoEval,
        HistKind::LedgerRead,
        HistKind::UpdateDiff,
        HistKind::UpdateCommit,
        HistKind::UpdateBfs,
        HistKind::UpdateGroupRepair,
        HistKind::UpdateLedgerPatch,
    ];
    for (i, &k) in stage_kinds.iter().enumerate() {
        let h = measured.write_delta.hist(k);
        json.push_str(&format!(
            "    {{ \"stage\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {} }}{}\n",
            k.name(),
            h.count(),
            h.quantile(0.50).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            if i + 1 == stage_kinds.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"saturation\": {\n    \"sweep\": [\n");
    for (i, &(o, a)) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"offered_qps\": {o:.1}, \"achieved_qps\": {a:.1} }}{}\n",
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"saturated\": {saturated},\n    \"saturation_qps\": {saturation_qps:.1}\n  }},\n"
    ));
    json.push_str(&format!("  \"slo_pass\": {slo_pass}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write report");
    println!(
        "saturation_qps={saturation_qps:.0} (saturated={saturated}) slo_pass={slo_pass} → {out_path}"
    );
    if fail_on_slo && !slo_pass {
        std::process::exit(1);
    }
}
