//! Perf-trajectory runner: executes the iso/EIP/serve micro-benches and
//! writes `BENCH_matcher.json` (median ns/op per scenario).
//!
//! This seeds and maintains the repo's performance baseline: every PR
//! touching the matcher hot path re-runs this binary and compares against
//! the committed medians. Medians over many short samples are used
//! instead of means because shared/noisy hosts skew means badly (one
//! descheduled sample can double a mean; the median shrugs it off).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p gpar-bench --bin perf_baseline            # full
//! cargo run --release -p gpar-bench --bin perf_baseline -- --quick # CI smoke
//! cargo run --release -p gpar-bench --bin perf_baseline -- --out path.json
//! ```

use gpar_bench::Workloads;
use gpar_core::Gpar;
use gpar_datagen::{generate_rules, RuleGenConfig};
use gpar_eip::{identify, EipAlgorithm, EipConfig};
use gpar_iso::{Matcher, MatcherConfig, PatternSketchCache, SharedScratch};
use gpar_mine::{DMine, DmineConfig};
use gpar_partition::CenterSite;
use gpar_serve::{GraphUpdate, RuleCatalog, ServeConfig, ServeEngine};
use std::sync::Arc;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    /// Median nanoseconds per op across samples.
    median_ns: u64,
    /// Ops per sample (for context in the JSON).
    ops: u64,
}

/// Times `op` (which performs `ops` logical operations) `samples` times
/// and returns the median ns per logical op.
fn measure(samples: usize, ops: u64, mut op: impl FnMut()) -> u64 {
    op(); // warm-up: fill caches/scratch, fault in pages
    let mut per_op: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            op();
            (t0.elapsed().as_nanos() as u64) / ops.max(1)
        })
        .collect();
    per_op.sort_unstable();
    per_op[per_op.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_matcher.json".to_string());

    // Scales: `--quick` is a CI sanity run (does it build, run, and
    // produce sane JSON?); the full mode is the recorded trajectory.
    let (users, sigma_n, samples, eip_samples) =
        if quick { (120, 4, 5, 3) } else { (500, 8, 30, 7) };

    let sg = Workloads::pokec(users);
    let pred = sg.schema.predicate("music", 0).expect("family");
    let rules = generate_rules(
        &sg.graph,
        &pred,
        &RuleGenConfig { count: 4, pattern_nodes: 5, pattern_edges: 7, max_radius: 2, seed: 3 },
    );
    let rule = rules.first().expect("rule generated").clone();
    let positives: Vec<_> = {
        let mut v: Vec<_> = gpar_core::q_stats(&sg.graph, &pred).positives.into_iter().collect();
        v.sort_unstable();
        v.truncate(32);
        v
    };
    let sites: Vec<CenterSite> =
        positives.iter().map(|&c| CenterSite::build(&sg.graph, c, 2)).collect();
    let nsites = sites.len() as u64;

    let mut scenarios: Vec<Scenario> = Vec::new();
    println!(
        "perf_baseline: |V|={} |E|={} sites={}",
        sg.graph.node_count(),
        sg.graph.edge_count(),
        nsites
    );

    // --- iso: per-site anchored existence, one scratch per "worker". ---
    for (name, cfg) in [
        ("iso/exists_anchored/vf2", MatcherConfig::vf2()),
        ("iso/exists_anchored/degree_ordered", MatcherConfig::degree_ordered()),
        ("iso/exists_anchored/guided", MatcherConfig::guided()),
    ] {
        let scratch = SharedScratch::default();
        let psketch = PatternSketchCache::default();
        let median_ns = measure(samples, nsites, || {
            let mut hits = 0u32;
            for s in &sites {
                let m = Matcher::new(s.graph(), cfg)
                    .with_scratch(scratch.clone())
                    .with_shared_pattern_cache(psketch.clone());
                if m.exists_anchored(rule.pr(), rule.pr().x(), s.center) {
                    hits += 1;
                }
            }
            std::hint::black_box(hits);
        });
        println!("  {name:<44} {median_ns:>12} ns/op");
        scenarios.push(Scenario { name, median_ns, ops: nsites });
    }

    // --- iso: full enumeration (the Matchc/disVF2 cost profile). ---
    {
        let scratch = SharedScratch::default();
        let median_ns = measure(samples, nsites, || {
            let mut total = 0u64;
            for s in &sites {
                let m = Matcher::new(s.graph(), MatcherConfig::vf2()).with_scratch(scratch.clone());
                total += m.count_anchored(rule.antecedent(), rule.antecedent().x(), s.center, None);
            }
            std::hint::black_box(total);
        });
        let name = "iso/count_anchored/full_enumeration";
        println!("  {name:<44} {median_ns:>12} ns/op");
        scenarios.push(Scenario { name, median_ns, ops: nsites });
    }

    // --- eip: end-to-end identification per algorithm. ---
    let sigma = Workloads::sigma(&sg, "music", sigma_n, 2);
    assert!(!sigma.is_empty());
    for (name, algo) in [
        ("eip/identify/match", EipAlgorithm::Match),
        ("eip/identify/matchs", EipAlgorithm::Matchs),
        ("eip/identify/matchc", EipAlgorithm::Matchc),
        ("eip/identify/disvf2", EipAlgorithm::DisVf2),
    ] {
        // Heavy full-enumeration algorithms get the quick scale even in
        // full mode so the runner stays minutes, not hours.
        let sigma_ref: &[Gpar] =
            if matches!(algo, EipAlgorithm::Matchc | EipAlgorithm::DisVf2) && !quick {
                &sigma[..sigma.len().min(4)]
            } else {
                &sigma
            };
        let median_ns = measure(eip_samples, 1, || {
            let cfg = EipConfig { eta: 1.5, d: Some(2), ..EipConfig::new(algo, 4) };
            std::hint::black_box(
                identify(&sg.graph, sigma_ref, &cfg).expect("valid").customers.len(),
            );
        });
        println!("  {name:<44} {median_ns:>12} ns/op");
        scenarios.push(Scenario { name, median_ns, ops: 1 });
    }

    // --- mine: full DMine rounds (Generate + Evaluate task queues). ---
    // Two numbers per run: wall-clock (host-dependent) and the simulated
    // n-processor time (partition/n + per-round critical path + sequential
    // coordinator) — the latter is what work stealing improves even on a
    // single-core host, by shrinking the slowest-worker busy time.
    {
        let cfg =
            DmineConfig { k: 6, sigma: 2, d: 2, workers: 4, max_rounds: 2, ..Default::default() };
        let miner = DMine::new(cfg);
        let mut sims: Vec<u64> = Vec::new();
        let median_ns = measure(eip_samples, 1, || {
            let res = miner.run(&sg.graph, &pred);
            sims.push(res.simulated_parallel_time().as_nanos() as u64);
            std::hint::black_box(res.sigma_size);
        });
        let name = "mine/rounds/wall";
        println!("  {name:<44} {median_ns:>12} ns/op");
        scenarios.push(Scenario { name, median_ns, ops: 1 });
        // `measure` ran one untimed warm-up call; drop its (cold-cache)
        // sample so the simulated median covers the same warm runs as the
        // wall median next to it.
        let warm = &mut sims[1..];
        warm.sort_unstable();
        let median_ns = warm[warm.len() / 2];
        let name = "mine/rounds/simulated_parallel";
        println!("  {name:<44} {median_ns:>12} ns/op");
        scenarios.push(Scenario { name, median_ns, ops: 1 });
    }

    // --- serve: warm-up pass and hot repeat queries. ---
    {
        let graph = Arc::new(sg.graph.clone());
        let mut catalog = RuleCatalog::new(graph.vocab().clone());
        for r in &sigma {
            catalog.insert(Arc::new(r.clone()), gpar_core::ConfStats::default());
        }
        let serve_pred = *sigma[0].predicate();
        // Warm-up cost: a fresh engine's first query evaluates all of L.
        let median_ns = measure(eip_samples, 1, || {
            let engine = ServeEngine::new(
                graph.clone(),
                &catalog,
                ServeConfig { workers: 2, eta: 1.5, ..Default::default() },
            );
            std::hint::black_box(
                engine.identify(serve_pred, None).expect("served").customers.len(),
            );
        });
        let name = "serve/identify/cold_warmup";
        println!("  {name:<44} {median_ns:>12} ns/op");
        scenarios.push(Scenario { name, median_ns, ops: 1 });

        // Hot path: repeat queries against a warmed engine + d-ball cache.
        let engine = ServeEngine::new(
            graph.clone(),
            &catalog,
            ServeConfig { workers: 2, eta: 1.5, ..Default::default() },
        );
        engine.identify(serve_pred, None).expect("warm");
        let hot: Vec<gpar_graph::NodeId> = positives.iter().copied().take(8).collect();
        let reps = 20u64;
        let median_ns = measure(samples, reps, || {
            for _ in 0..reps {
                std::hint::black_box(
                    engine.identify(serve_pred, Some(hot.clone())).expect("served").customers.len(),
                );
            }
        });
        let name = "serve/identify/hot_subset";
        println!("  {name:<44} {median_ns:>12} ns/op");
        scenarios.push(Scenario { name, median_ns, ops: reps });

        // --- serve: live updates (apply-update + re-query) vs rebuild. ---
        // Each sample applies a *fresh* mutation — a new center-typed node
        // with one edge into the graph — so no sample degenerates to a
        // deduplicated no-op, then re-runs the hot subset query. The
        // rebuild baseline pays what a static engine would: a full
        // engine construction plus the warm scan, per update.
        let x_label = match serve_pred.x_cond {
            gpar_pattern::NodeCond::Label(l) => l,
            gpar_pattern::NodeCond::Any => sg.graph.node_label(gpar_graph::NodeId(0)),
        };
        let degree_extreme = |max: bool| {
            let mut best = gpar_graph::NodeId(0);
            for v in sg.graph.nodes() {
                let better = if max {
                    sg.graph.degree(v) > sg.graph.degree(best)
                } else {
                    sg.graph.degree(v) < sg.graph.degree(best)
                };
                if better {
                    best = v;
                }
            }
            best
        };
        for (name, target) in [
            ("serve/update/small", degree_extreme(false)),
            ("serve/update/hub", degree_extreme(true)),
        ] {
            let engine = ServeEngine::new(
                graph.clone(),
                &catalog,
                ServeConfig { workers: 2, eta: 1.5, ..Default::default() },
            );
            engine.identify(serve_pred, None).expect("warm");
            let median_ns = measure(samples, 1, || {
                let n = engine.graph_size().0 as u32;
                engine
                    .apply_update(&GraphUpdate {
                        new_nodes: vec![x_label],
                        new_edges: vec![(gpar_graph::NodeId(n), target, serve_pred.label)],
                        ..Default::default()
                    })
                    .expect("valid update");
                std::hint::black_box(
                    engine.identify(serve_pred, Some(hot.clone())).expect("served").customers.len(),
                );
            });
            println!("  {name:<44} {median_ns:>12} ns/op");
            scenarios.push(Scenario { name, median_ns, ops: 1 });
        }
        // --- serve: deletions (the non-monotone half of incrementality). ---
        {
            // serve/update/delete: the deletion mirror of
            // serve/update/small — that scenario measures "a low-degree
            // node joins", this one measures "a recently-joined low-degree
            // node leaves" (node removal: edge cascade + tombstone-free
            // overlay cleanup + union-ball invalidation + ledger
            // subtraction) with a re-query per sample. The departures are
            // staged before timing, each attached to a *distinct*
            // low-degree anchor so every sample invalidates a comparably
            // tiny union ball. Deleting an organic social edge instead
            // touches a ≥ degree-8 endpoint here and re-evaluates its
            // whole ball — that honest cost is what serve/update/churn
            // records.
            let engine = ServeEngine::new(
                graph.clone(),
                &catalog,
                ServeConfig { workers: 2, eta: 1.5, ..Default::default() },
            );
            engine.identify(serve_pred, None).expect("warm");
            let mut anchors: Vec<gpar_graph::NodeId> = sg.graph.nodes().collect();
            anchors.sort_by_key(|&v| sg.graph.degree(v));
            anchors.truncate(samples + 2);
            let doomed: Vec<gpar_graph::NodeId> = anchors
                .iter()
                .map(|&a| {
                    let n = gpar_graph::NodeId(engine.graph_size().0 as u32);
                    engine
                        .apply_update(&GraphUpdate {
                            new_nodes: vec![x_label],
                            new_edges: vec![(n, a, serve_pred.label)],
                            ..Default::default()
                        })
                        .expect("valid staging insert");
                    n
                })
                .collect();
            let mut next = 0usize;
            let median_ns = measure(samples, 1, || {
                let w = doomed[next % doomed.len()];
                next += 1;
                engine
                    .apply_update(&GraphUpdate { del_nodes: vec![w], ..Default::default() })
                    .expect("valid removal");
                std::hint::black_box(
                    engine.identify(serve_pred, Some(hot.clone())).expect("served").customers.len(),
                );
            });
            let name = "serve/update/delete";
            println!("  {name:<44} {median_ns:>12} ns/op");
            scenarios.push(Scenario { name, median_ns, ops: 1 });
        }
        {
            // serve/update/churn: steady-state delete + reinsert of the
            // same edge (tombstone, then un-tombstone) with a re-query
            // after each batch — the write-heavy worst case where every
            // sample pays two union-ball invalidations.
            let engine = ServeEngine::new(
                graph.clone(),
                &catalog,
                ServeConfig { workers: 2, eta: 1.5, ..Default::default() },
            );
            engine.identify(serve_pred, None).expect("warm");
            // The most local edge there is (smallest summed endpoint
            // degree): churn measures the steady-state batch machinery,
            // not ball size.
            let e = sg
                .graph
                .nodes()
                .flat_map(|v| sg.graph.out_edges(v).iter().map(move |e| (v, e.node, e.label)))
                .min_by_key(|&(s, d, _)| sg.graph.degree(s) + sg.graph.degree(d))
                .expect("graph has edges");
            let median_ns = measure(samples, 2, || {
                engine
                    .apply_update(&GraphUpdate { del_edges: vec![e], ..Default::default() })
                    .expect("valid deletion");
                std::hint::black_box(
                    engine.identify(serve_pred, Some(hot.clone())).expect("served").customers.len(),
                );
                engine
                    .apply_update(&GraphUpdate { new_edges: vec![e], ..Default::default() })
                    .expect("valid reinsert");
                std::hint::black_box(
                    engine.identify(serve_pred, Some(hot.clone())).expect("served").customers.len(),
                );
            });
            let name = "serve/update/churn";
            println!("  {name:<44} {median_ns:>12} ns/op");
            scenarios.push(Scenario { name, median_ns, ops: 2 });
        }
        {
            // Full-rebuild baseline for the same mutation + re-query: a
            // static serving stack re-freezes the CSR, reconstructs the
            // candidate index and re-runs the warm scan on every update.
            let mut node_labels: Vec<gpar_graph::Label> =
                sg.graph.nodes().map(|v| sg.graph.node_label(v)).collect();
            let mut edges: Vec<(gpar_graph::NodeId, gpar_graph::NodeId, gpar_graph::Label)> = sg
                .graph
                .nodes()
                .flat_map(|v| sg.graph.out_edges(v).iter().map(move |e| (v, e.node, e.label)))
                .collect();
            let target = degree_extreme(false);
            let median_ns = measure(eip_samples, 1, || {
                let n = gpar_graph::NodeId(node_labels.len() as u32);
                node_labels.push(x_label);
                edges.push((n, target, serve_pred.label));
                let mut b = gpar_graph::GraphBuilder::new(graph.vocab().clone());
                for &l in &node_labels {
                    b.add_node(l);
                }
                for &(s, d, l) in &edges {
                    b.add_edge(s, d, l);
                }
                let engine = ServeEngine::new(
                    std::sync::Arc::new(b.build()),
                    &catalog,
                    ServeConfig { workers: 2, eta: 1.5, ..Default::default() },
                );
                std::hint::black_box(
                    engine.identify(serve_pred, Some(hot.clone())).expect("served").customers.len(),
                );
            });
            let name = "serve/update/rebuild";
            println!("  {name:<44} {median_ns:>12} ns/op");
            scenarios.push(Scenario { name, median_ns, ops: 1 });
        }
    }

    // --- JSON out (hand-rolled: the workspace is serde-free). ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p gpar-bench --bin perf_baseline\",\n",
    );
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"graph\": {{ \"users\": {users}, \"nodes\": {}, \"edges\": {} }},\n",
        sg.graph.node_count(),
        sg.graph.edge_count()
    ));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 == scenarios.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"median_ns_per_op\": {}, \"ops_per_sample\": {} }}{comma}\n",
            s.name, s.median_ns, s.ops
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
