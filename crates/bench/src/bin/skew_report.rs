//! One-shot straggler probe: runs one mining pass and one EIP pass and
//! prints, for each, the simulated n-processor time, the wall clock, and
//! the per-worker busy-time skew (`max/min` — 1.0 is perfectly even).
//!
//! Each invocation performs exactly one measurement of each kind, so an
//! interleaved min-of-N comparison between two binaries is just an outer
//! shell loop alternating them (single runs on shared hosts swing 2×;
//! interleaved minima don't).
//!
//! ```text
//! cargo run --release -p gpar-bench --bin skew_report -- [--users N] [--workers N] [--sigma N] [--workload pokec|gplus]
//! ```

use gpar_bench::Workloads;
use gpar_eip::{identify, EipAlgorithm, EipConfig};
use gpar_mine::{DMine, DmineConfig};
use std::time::{Duration, Instant};

fn arg(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `max/min` over per-worker busy times, as a display string.
fn skew(times: &[Duration]) -> String {
    let max = times.iter().max().copied().unwrap_or_default().as_secs_f64();
    let min = times.iter().min().copied().unwrap_or_default().as_secs_f64();
    if min > 0.0 {
        format!("{:.2}", max / min)
    } else {
        "inf".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let users = arg(&args, "--users", 500);
    let workers = arg(&args, "--workers", 4);
    let sigma_n = arg(&args, "--sigma", 8);

    let gplus = args
        .iter()
        .position(|a| a == "--workload")
        .and_then(|i| args.get(i + 1))
        .is_some_and(|v| v == "gplus");
    let sg = if gplus { Workloads::gplus(users) } else { Workloads::pokec(users) };
    let algo = args
        .iter()
        .position(|a| a == "--algo")
        .and_then(|i| args.get(i + 1))
        .map(|v| match v.as_str() {
            "matchc" => EipAlgorithm::Matchc,
            "matchs" => EipAlgorithm::Matchs,
            "disvf2" => EipAlgorithm::DisVf2,
            _ => EipAlgorithm::Match,
        })
        .unwrap_or(EipAlgorithm::Match);
    let family = if gplus { "employer" } else { "music" };
    let pred = sg.schema.predicate(family, 0).expect("family");

    // --- one mining pass ---
    let cfg = DmineConfig { k: 6, sigma: 2, d: 2, workers, max_rounds: 2, ..Default::default() };
    let t0 = Instant::now();
    let res = DMine::new(cfg).run(&sg.graph, &pred);
    let wall = t0.elapsed();
    // Per-worker busy time summed across rounds (the whole-run skew).
    let mut per_worker = vec![Duration::ZERO; workers.max(1)];
    for round in &res.round_worker_times {
        for (acc, &t) in per_worker.iter_mut().zip(round) {
            *acc += t;
        }
    }
    let critical: Duration =
        res.round_worker_times.iter().map(|r| r.iter().max().copied().unwrap_or_default()).sum();
    println!(
        "mine users={users} workers={workers} simulated_ns={} critical_ns={} wall_ns={} skew_max_min={} steals={} sigma_size={}",
        res.simulated_parallel_time().as_nanos(),
        critical.as_nanos(),
        wall.as_nanos(),
        skew(&per_worker),
        res.steals,
        res.sigma_size,
    );

    // --- one EIP pass ---
    let sigma = Workloads::sigma(&sg, family, sigma_n, 2);
    assert!(!sigma.is_empty());
    let cfg = EipConfig { eta: 1.5, d: Some(2), ..EipConfig::new(algo, workers) };
    let t0 = Instant::now();
    let res = identify(&sg.graph, &sigma, &cfg).expect("valid Σ");
    let wall = t0.elapsed();
    println!(
        "eip users={users} workers={workers} sigma={} simulated_ns={} critical_ns={} wall_ns={} skew_max_min={} steals={} customers={}",
        sigma.len(),
        res.simulated_parallel_time().as_nanos(),
        res.worker_times.iter().max().copied().unwrap_or_default().as_nanos(),
        wall.as_nanos(),
        skew(&res.worker_times),
        res.steals,
        res.customers.len(),
    );
}
