//! Regenerates every figure and table of the paper's evaluation (§6) at
//! laptop scale.
//!
//! ```text
//! figures [all|f5a|f5b|...|f5o|tprec|skew] [--quick]
//! ```
//!
//! Absolute times differ from the paper (20 EC2 nodes, 30M+ edge graphs);
//! what is compared is the *shape*: who wins, by what factor, and how the
//! curves move with n, σ, ‖Σ‖, d and |G|. Each figure prints the paper's
//! reported numbers alongside.

use gpar_bench::{print_figure, run_dmine, run_eip, synth_predicate, timed, Series, Workloads};
use gpar_core::{mni_support, precision, q_stats, EvalOptions};
use gpar_eip::{identify, EipAlgorithm, EipConfig};
use gpar_mine::{DMine, DmineConfig, MineOpts};
use gpar_partition::{partition_sites, PartitionStats, PartitionStrategy};

struct Scale {
    pokec_users: usize,
    gplus_users: usize,
    synth_sizes: Vec<(usize, usize)>,
    ns: Vec<usize>,
    sigma_counts: Vec<usize>,
    ds: Vec<u32>,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                pokec_users: 800,
                gplus_users: 800,
                synth_sizes: vec![(4_000, 8_000), (8_000, 16_000), (12_000, 24_000)],
                ns: vec![4, 12, 20],
                sigma_counts: vec![8, 24, 48],
                ds: vec![1, 2, 3],
            }
        } else {
            Self {
                pokec_users: 2500,
                gplus_users: 2500,
                synth_sizes: vec![
                    (10_000, 20_000),
                    (20_000, 40_000),
                    (30_000, 60_000),
                    (40_000, 80_000),
                    (50_000, 100_000),
                ],
                ns: vec![4, 8, 12, 16, 20],
                sigma_counts: vec![8, 16, 24, 32, 40, 48],
                ds: vec![1, 2, 3, 4],
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    let scale = Scale::new(quick);
    let all = which.contains(&"all");
    let want = |id: &str| all || which.contains(&id);

    println!("# GPAR evaluation reproduction ({})", if quick { "quick" } else { "full" });

    if want("f5a") {
        fig_mine_vary_n("F5a", "DMine vs DMineno, varying n (Pokec)", &scale, Dataset::Pokec);
    }
    if want("f5b") {
        fig_mine_vary_n("F5b", "DMine vs DMineno, varying n (Google+)", &scale, Dataset::Gplus);
    }
    if want("f5c") {
        fig_mine_vary_sigma("F5c", "DMine vs DMineno, varying σ (Pokec)", &scale, Dataset::Pokec);
    }
    if want("f5d") {
        fig_mine_vary_sigma("F5d", "DMine vs DMineno, varying σ (Google+)", &scale, Dataset::Gplus);
    }
    if want("f5e") {
        fig_mine_synth_n("F5e", &scale);
    }
    if want("f5f") {
        fig_mine_synth_size("F5f", &scale);
    }
    if want("f5g") {
        fig_case_study("F5g", &scale);
    }
    if want("tprec") {
        table_precision(&scale);
    }
    if want("f5h") {
        fig_eip_vary_n(
            "F5h",
            "Match vs Matchc vs disVF2, varying n (Pokec)",
            &scale,
            Dataset::Pokec,
        );
    }
    if want("f5i") {
        fig_eip_vary_n(
            "F5i",
            "Match vs Matchc vs disVF2, varying n (Google+)",
            &scale,
            Dataset::Gplus,
        );
    }
    if want("f5j") {
        fig_eip_vary_sigma_count("F5j", "varying ‖Σ‖ (Pokec)", &scale, Dataset::Pokec);
    }
    if want("f5k") {
        fig_eip_vary_sigma_count("F5k", "varying ‖Σ‖ (Google+)", &scale, Dataset::Gplus);
    }
    if want("f5l") {
        fig_eip_vary_d("F5l", "varying d (Pokec)", &scale, Dataset::Pokec);
    }
    if want("f5m") {
        fig_eip_vary_d("F5m", "varying d (Google+)", &scale, Dataset::Gplus);
    }
    if want("f5n") {
        fig_eip_synth_n("F5n", &scale);
    }
    if want("f5o") {
        fig_eip_synth_size("F5o", &scale);
    }
    if want("skew") {
        report_skew(&scale);
    }
}

#[derive(Clone, Copy)]
enum Dataset {
    Pokec,
    Gplus,
}

impl Dataset {
    fn build(self, scale: &Scale) -> (gpar_datagen::SocialGraph, &'static str) {
        match self {
            Dataset::Pokec => (Workloads::pokec(scale.pokec_users), "music"),
            Dataset::Gplus => (Workloads::gplus(scale.gplus_users), "place"),
        }
    }
}

// ---------------------------------------------------------------- mining

fn fig_mine_vary_n(id: &str, title: &str, scale: &Scale, ds: Dataset) {
    let (sg, family) = ds.build(scale);
    let pred = sg.schema.predicate(family, 0).expect("family");
    let sigma = 8;
    let mut s_dmine = Series::new("DMine");
    let mut s_no = Series::new("DMineno");
    for &n in &scale.ns {
        s_dmine.push(n, run_dmine(&sg.graph, &pred, n, sigma, MineOpts::all()).0);
        s_no.push(n, run_dmine(&sg.graph, &pred, n, sigma, MineOpts::none()).0);
    }
    print_figure(
        id,
        title,
        "both scale with n; DMine ≈1.37–1.67× faster than DMineno; \
         3.7×/2.69× speedup from n=4→20 (Fig 5a/5b)",
        "n",
        &[s_dmine, s_no],
    );
}

fn fig_mine_vary_sigma(id: &str, title: &str, scale: &Scale, ds: Dataset) {
    let (sg, family) = ds.build(scale);
    let pred = sg.schema.predicate(family, 0).expect("family");
    let qs = q_stats(&sg.graph, &pred);
    // Sweep σ across the support spectrum, as Fig 5(c)/5(d) does.
    let base = (qs.supp_q() / 40).max(2);
    let sigmas: Vec<u64> = (1..=5).map(|i| base * i).collect();
    let mut s_dmine = Series::new("DMine");
    let mut s_no = Series::new("DMineno");
    for &s in &sigmas {
        s_dmine.push(s, run_dmine(&sg.graph, &pred, 4, s, MineOpts::all()).0);
        s_no.push(s, run_dmine(&sg.graph, &pred, 4, s, MineOpts::none()).0);
    }
    print_figure(
        id,
        title,
        "smaller σ ⇒ more candidate patterns ⇒ longer runtime; DMine less \
         sensitive thanks to its filtering (Fig 5c/5d)",
        "σ",
        &[s_dmine, s_no],
    );
}

fn fig_mine_synth_n(id: &str, scale: &Scale) {
    let (nodes, edges) = scale.synth_sizes[0];
    let g = Workloads::synth(nodes, edges);
    let pred = synth_predicate(&g);
    let mut s_dmine = Series::new("DMine");
    let mut s_no = Series::new("DMineno");
    for &n in &scale.ns {
        s_dmine.push(n, run_dmine(&g, &pred, n, 5, MineOpts::all()).0);
        s_no.push(n, run_dmine(&g, &pred, n, 5, MineOpts::none()).0);
    }
    print_figure(
        id,
        "DMine varying n (synthetic)",
        "consistent with Pokec/Google+; DMine takes 533.2s at (10M,20M) with \
         n=20 (Fig 5e; ours is the 1:1000-scale graph)",
        "n",
        &[s_dmine, s_no],
    );
}

fn fig_mine_synth_size(id: &str, scale: &Scale) {
    let mut s_dmine = Series::new("DMine");
    let mut s_no = Series::new("DMineno");
    for &(nodes, edges) in &scale.synth_sizes {
        let g = Workloads::synth(nodes, edges);
        let pred = synth_predicate(&g);
        let label = format!("({}k,{}k)", nodes / 1000, edges / 1000);
        s_dmine.push(&label, run_dmine(&g, &pred, 4, 5, MineOpts::all()).0);
        s_no.push(&label, run_dmine(&g, &pred, 4, 5, MineOpts::none()).0);
    }
    print_figure(
        id,
        "DMine varying |G| (synthetic)",
        "both grow with |G|; DMine outperforms DMineno by 1.76× (Fig 5f)",
        "|G|",
        &[s_dmine, s_no],
    );
}

fn fig_case_study(id: &str, scale: &Scale) {
    println!("\n### {id} — case study: GPARs discovered from social graphs");
    println!("paper: R9 (music via follows+hobbies), R10 (books via mutual follows), R11 (CMU/Microsoft majors)\n");
    for (sg, family, what) in [
        (Workloads::pokec(scale.pokec_users), "music", "Pokec-like"),
        (Workloads::gplus(scale.gplus_users), "major", "Google+-like"),
    ] {
        let pred = sg.schema.predicate(family, 0).expect("family");
        let cfg = DmineConfig {
            k: 3,
            sigma: 8,
            d: 2,
            lambda: 0.5,
            workers: 4,
            max_rounds: 2,
            ..Default::default()
        };
        let res = DMine::new(cfg).run(&sg.graph, &pred);
        println!("{what}: top-{} rules for {}_00:", res.top_k.len(), family);
        for r in &res.top_k {
            println!("  conf={:.3} supp={:<4} {}", r.conf_value, r.support(), r.rule);
        }
    }
}

fn table_precision(scale: &Scale) {
    println!("\n### T-prec — Exp-2: prediction precision of conf vs PCAconf vs Iconf");
    println!("paper: conf 0.423/0.388/0.381, PCAconf ≈ 0.28, Iconf ≈ 0.27 (top 10/30/60)\n");
    let train = gpar_datagen::pokec_like(scale.pokec_users, 0xAAA);
    let test = gpar_datagen::pokec_like(scale.pokec_users, 0xBBB);
    let preds = train.schema.default_predicates(5);
    let opts = EvalOptions::default();

    // Mine Σ per predicate with λ = 0 (pure relevance, as the paper sets).
    let mut all: Vec<(gpar_mine::MinedRule, f64, f64)> = Vec::new(); // (rule, pca, iconf)
    for pred in &preds {
        let cfg = DmineConfig {
            k: 10,
            sigma: 5,
            d: 2,
            lambda: 0.0,
            workers: 4,
            max_rounds: 2,
            ..Default::default()
        };
        let res = DMine::new(cfg).run(&train.graph, pred);
        for r in res.sigma {
            let pca = r.stats.pca();
            let mni_r = mni_support(r.rule.pr(), &train.graph, &opts);
            let pq = r.rule.predicate().pattern(train.graph.vocab().clone());
            let mni_q = mni_support(&pq, &train.graph, &opts).max(1);
            let ic = if r.stats.supp_q_qbar == 0 {
                f64::INFINITY
            } else {
                mni_r as f64 * r.stats.supp_qbar as f64
                    / (r.stats.supp_q_qbar as f64 * mni_q as f64)
            };
            all.push((r, pca, ic));
        }
    }
    println!("|Σ| mined across {} predicates: {}", preds.len(), all.len());

    let avg_prec = |ranked: &[&gpar_mine::MinedRule], top: usize| -> f64 {
        let take = ranked.iter().take(top).collect::<Vec<_>>();
        if take.is_empty() {
            return 0.0;
        }
        take.iter().map(|r| precision(&r.rule, &test.graph, &opts)).sum::<f64>() / take.len() as f64
    };
    let mut by_conf: Vec<&gpar_mine::MinedRule> = all.iter().map(|(r, _, _)| r).collect();
    by_conf.sort_by(|a, b| b.conf_value.total_cmp(&a.conf_value));
    let mut by_pca: Vec<&gpar_mine::MinedRule> = all.iter().map(|(r, _, _)| r).collect();
    by_pca.sort_by(|a, b| {
        let pa = all.iter().find(|(r, _, _)| std::ptr::eq(r, *a)).unwrap().1;
        let pb = all.iter().find(|(r, _, _)| std::ptr::eq(r, *b)).unwrap().1;
        pb.total_cmp(&pa)
    });
    let mut by_ic: Vec<&gpar_mine::MinedRule> = all.iter().map(|(r, _, _)| r).collect();
    by_ic.sort_by(|a, b| {
        let ia = all.iter().find(|(r, _, _)| std::ptr::eq(r, *a)).unwrap().2;
        let ib = all.iter().find(|(r, _, _)| std::ptr::eq(r, *b)).unwrap().2;
        ib.total_cmp(&ia)
    });

    println!("\n| metric | top 10 | top 30 | top 60 |");
    println!("|---|---|---|---|");
    for (name, ranked) in [("PCAconf", &by_pca), ("Iconf", &by_ic), ("conf", &by_conf)] {
        println!(
            "| {name} | {:.3} | {:.3} | {:.3} |",
            avg_prec(ranked, 10),
            avg_prec(ranked, 30),
            avg_prec(ranked, 60)
        );
    }
}

// ------------------------------------------------------------------- EIP

fn fig_eip_vary_n(id: &str, title: &str, scale: &Scale, ds: Dataset) {
    let (sg, family) = ds.build(scale);
    let d = 2;
    let sigma = Workloads::sigma(&sg, family, 24, d);
    let mut series = vec![Series::new("Match"), Series::new("Matchc"), Series::new("disVF2")];
    for &n in &scale.ns {
        series[0].push(n, run_eip(&sg.graph, &sigma, EipAlgorithm::Match, n, d));
        series[1].push(n, run_eip(&sg.graph, &sigma, EipAlgorithm::Matchc, n, d));
        series[2].push(n, run_eip(&sg.graph, &sigma, EipAlgorithm::DisVf2, n, d));
    }
    print_figure(
        id,
        title,
        "Match 3.52×/3.54× faster from n=4→20; Match > Matchc > disVF2 \
         (Matchc/Match 4.79×/6.24× faster than disVF2 on average) (Fig 5h/5i)",
        "n",
        &series,
    );
}

fn fig_eip_vary_sigma_count(id: &str, title: &str, scale: &Scale, ds: Dataset) {
    let (sg, family) = ds.build(scale);
    let d = 2;
    let all_rules = Workloads::sigma(&sg, family, *scale.sigma_counts.last().unwrap(), d);
    let mut series = vec![Series::new("Match"), Series::new("Matchc"), Series::new("disVF2")];
    for &count in &scale.sigma_counts {
        let sigma = &all_rules[..count.min(all_rules.len())];
        series[0].push(count, run_eip(&sg.graph, sigma, EipAlgorithm::Match, 8, d));
        series[1].push(count, run_eip(&sg.graph, sigma, EipAlgorithm::Matchc, 8, d));
        series[2].push(count, run_eip(&sg.graph, sigma, EipAlgorithm::DisVf2, 8, d));
    }
    print_figure(
        id,
        title,
        "all grow with ‖Σ‖; Match least sensitive (sharing + early \
         termination amortize across rules) (Fig 5j/5k)",
        "‖Σ‖",
        &series,
    );
}

fn fig_eip_vary_d(id: &str, title: &str, scale: &Scale, ds: Dataset) {
    // Smaller graph: d-balls grow combinatorially with d.
    let (sg, family) = match ds {
        Dataset::Pokec => (Workloads::pokec(scale.pokec_users / 2), "music"),
        Dataset::Gplus => (Workloads::gplus(scale.gplus_users / 2), "place"),
    };
    let mut series = vec![Series::new("Match"), Series::new("Matchc"), Series::new("disVF2")];
    for &d in &scale.ds {
        let sigma = Workloads::sigma(&sg, family, 20, d);
        series[0].push(d, run_eip(&sg.graph, &sigma, EipAlgorithm::Match, 8, d));
        series[1].push(d, run_eip(&sg.graph, &sigma, EipAlgorithm::Matchc, 8, d));
        series[2].push(d, run_eip(&sg.graph, &sigma, EipAlgorithm::DisVf2, 8, d));
    }
    print_figure(
        id,
        title,
        "log-scale growth with d; Match and Matchc less sensitive than \
         disVF2 (Fig 5l/5m)",
        "d",
        &series,
    );
}

fn fig_eip_synth_n(id: &str, scale: &Scale) {
    let (nodes, edges) = *scale.synth_sizes.last().unwrap();
    let g = Workloads::synth(nodes, edges);
    let d = 2;
    let (_, sigma) = Workloads::synth_sigma(&g, 24, d);
    let mut series = vec![Series::new("Match"), Series::new("Matchc"), Series::new("disVF2")];
    for &n in &scale.ns {
        series[0].push(n, run_eip(&g, &sigma, EipAlgorithm::Match, n, d));
        series[1].push(n, run_eip(&g, &sigma, EipAlgorithm::Matchc, n, d));
        series[2].push(n, run_eip(&g, &sigma, EipAlgorithm::DisVf2, n, d));
    }
    print_figure(
        id,
        "Match varying n (synthetic)",
        "Match improves 3.65× from n=4→20 (Fig 5n)",
        "n",
        &series,
    );
}

fn fig_eip_synth_size(id: &str, scale: &Scale) {
    let d = 2;
    let mut series = vec![Series::new("Match"), Series::new("Matchc"), Series::new("disVF2")];
    for &(nodes, edges) in &scale.synth_sizes {
        let g = Workloads::synth(nodes, edges);
        let (_, sigma) = Workloads::synth_sigma(&g, 24, d);
        let label = format!("({}k,{}k)", nodes / 1000, edges / 1000);
        series[0].push(&label, run_eip(&g, &sigma, EipAlgorithm::Match, 4, d));
        series[1].push(&label, run_eip(&g, &sigma, EipAlgorithm::Matchc, 4, d));
        series[2].push(&label, run_eip(&g, &sigma, EipAlgorithm::DisVf2, 4, d));
    }
    print_figure(
        id,
        "Match varying |G| (synthetic)",
        "Match performs best and is least sensitive to |G|; at (50M,100M) \
         Match takes 163s vs disVF2's 922s with n=4 (Fig 5o; ours is the \
         1:1000-scale graph)",
        "|G|",
        &series,
    );
}

// ------------------------------------------------------------------ skew

fn report_skew(scale: &Scale) {
    println!("\n### skew — fragmentation balance (§6 'Fragmentation and distribution')");
    println!("paper: ≤14.4% (Pokec) / 8.8% (Google+) for DMine; ≤6.0%/5.2% for Match\n");
    let sg = Workloads::pokec(scale.pokec_users);
    let pred = sg.schema.predicate("music", 0).expect("family");

    // Partition-load skew for both strategies.
    let centers: Vec<_> = sg.graph.nodes_with_label(sg.schema.user).collect();
    for strategy in [PartitionStrategy::Balanced, PartitionStrategy::Hash] {
        let parts = partition_sites(&sg.graph, &centers, 2, 8, strategy);
        let loads = parts.iter().map(|p| p.iter().map(|s| s.load()).sum::<u64>() as f64);
        let stats = PartitionStats::from_values(loads).expect("non-empty");
        println!("site-load skew ({strategy:?}, n=8): {:.1}%", 100.0 * stats.skew());
    }

    // Measured per-worker time skew for Match and DMine.
    let sigma = Workloads::sigma(&sg, "music", 24, 2);
    let cfg = EipConfig { eta: 1.5, ..EipConfig::new(EipAlgorithm::Match, 8) };
    let (res, _) = timed(|| identify(&sg.graph, &sigma, &cfg).expect("valid Σ"));
    let stats = PartitionStats::from_values(res.worker_times.iter().map(|t| t.as_secs_f64()))
        .expect("non-empty");
    println!("Match worker-time skew (n=8): {:.1}%", 100.0 * stats.skew());

    let (_, mine) = run_dmine(&sg.graph, &pred, 8, 8, MineOpts::all());
    if let Some(last) = mine.round_worker_times.last() {
        let stats =
            PartitionStats::from_values(last.iter().map(|t| t.as_secs_f64())).expect("non-empty");
        println!("DMine worker-time skew (n=8, last round): {:.1}%", 100.0 * stats.skew());
    }
}
