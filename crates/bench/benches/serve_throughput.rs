//! Serving-layer throughput: QPS of `ServeEngine::identify` as a function
//! of worker-pool size, and the effect of the d-ball LRU cache on
//! repeat-query latency.
//!
//! Reported numbers (printed per benchmark):
//!
//! * `serve/workers/{n}` — a 64-request mixed batch (subset queries over a
//!   hot candidate set) served by an `n`-worker pool; the explicit
//!   `QPS` line is batch-size / wall-clock.
//! * `serve/cache/{capacity}` — the same hot workload with the cache
//!   disabled (`0`) versus sized to the working set; the cached run must
//!   show a lower per-query mean and a non-trivial hit rate.
//!
//! On a single-core host the worker sweep reports flat QPS — the pool
//! overlaps requests, but wall-clock cannot beat one CPU (the same
//! substitution note as the mining benches; see `simulated_parallel_time`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpar_bench::Workloads;
use gpar_core::ConfStats;
use gpar_graph::NodeId;
use gpar_serve::{IdentifyRequest, RuleCatalog, ServeConfig, ServeEngine};
use std::sync::Arc;
use std::time::Instant;

fn setup() -> (Arc<gpar_graph::Graph>, RuleCatalog, gpar_core::Predicate) {
    let sg = Workloads::pokec(400);
    let sigma = Workloads::sigma(&sg, "music", 8, 2);
    assert!(!sigma.is_empty());
    let pred = *sigma[0].predicate();
    let mut catalog = RuleCatalog::new(sg.graph.vocab().clone());
    for r in sigma {
        catalog.insert(Arc::new(r), ConfStats::default());
    }
    (Arc::new(sg.graph), catalog, pred)
}

/// A deterministic mixed batch: every request asks about a small slice of
/// a hot candidate set (so the d-ball cache can help), a few ask for the
/// full candidate list.
fn batch(pred: gpar_core::Predicate, hot: &[NodeId], size: usize) -> Vec<IdentifyRequest> {
    (0..size)
        .map(|i| IdentifyRequest {
            predicate: pred,
            candidates: if i % 16 == 15 {
                None
            } else {
                let lo = (i * 3) % hot.len();
                let hi = (lo + 8).min(hot.len());
                Some(hot[lo..hi].to_vec())
            },
            opts: Default::default(),
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let (graph, catalog, pred) = setup();
    let hot: Vec<NodeId> = (0..graph.node_count() as u32).step_by(5).map(NodeId).collect();

    // --- QPS vs worker-pool size --------------------------------------
    let mut group = c.benchmark_group("serve/workers");
    group.sample_size(10);
    for workers in [1, 2, 4] {
        let engine = ServeEngine::new(
            graph.clone(),
            &catalog,
            ServeConfig { workers, eta: 0.5, d: Some(2), ..Default::default() },
        );
        // Warm the predicate once so the measurement is the steady state.
        engine.identify(pred, Some(vec![NodeId(0)])).expect("warm");
        let reqs = batch(pred, &hot, 64);
        let t0 = Instant::now();
        let mut answered = 0usize;
        let rounds = 5;
        for _ in 0..rounds {
            answered +=
                engine.identify_batch(reqs.clone()).into_iter().filter(|r| r.is_ok()).count();
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "serve/workers/{workers}: {answered} queries in {secs:.3}s -> {:.0} QPS",
            answered as f64 / secs
        );
        group.bench_function(BenchmarkId::from_parameter(workers), |b| {
            b.iter(|| engine.identify_batch(reqs.clone()).len())
        });
    }
    group.finish();

    // --- repeat-query latency vs cache capacity -----------------------
    let mut group = c.benchmark_group("serve/cache");
    group.sample_size(10);
    let mut means = Vec::new();
    for capacity in [0usize, 4096] {
        let engine = ServeEngine::new(
            graph.clone(),
            &catalog,
            ServeConfig {
                workers: 2,
                eta: 0.5,
                d: Some(2),
                cache_capacity: capacity,
                ..Default::default()
            },
        );
        let reqs = batch(pred, &hot, 64);
        engine.identify_batch(reqs.clone()); // warm-up + (maybe) cache fill
        let t0 = Instant::now();
        let rounds = 5;
        for _ in 0..rounds {
            engine.identify_batch(reqs.clone());
        }
        let per_query = t0.elapsed().as_secs_f64() / (rounds * reqs.len()) as f64;
        means.push(per_query);
        let cache = engine.stats().cache;
        println!(
            "serve/cache/{capacity}: {:.1} us/query, cache hit rate {:.0}% \
             ({} hits / {} misses)",
            per_query * 1e6,
            cache.hit_rate() * 100.0,
            cache.hits,
            cache.misses
        );
        group.bench_function(BenchmarkId::from_parameter(capacity), |b| {
            b.iter(|| engine.identify_batch(reqs.clone()).len())
        });
    }
    group.finish();
    // Report, don't assert: wall-clock comparisons flake on noisy shared
    // runners; the hit-rate lines above are the deterministic signal.
    if means[1] < means[0] {
        println!("serve/cache: repeat-query speedup from d-ball LRU = {:.2}x", means[0] / means[1]);
    } else {
        println!(
            "serve/cache: WARNING — cached run not faster (cached {:.1}us vs uncached {:.1}us); \
             expected on a noisy host, investigate if persistent",
            means[1] * 1e6,
            means[0] * 1e6
        );
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
