//! Criterion counterpart of Figures 5(h)/5(j): the four EIP algorithm
//! variants and rule-set size sensitivity at a fixed small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpar_bench::Workloads;
use gpar_eip::{identify, EipAlgorithm, EipConfig};

fn bench_eip(c: &mut Criterion) {
    let sg = Workloads::pokec(500);
    let sigma = Workloads::sigma(&sg, "music", 16, 2);
    assert!(!sigma.is_empty());

    let mut group = c.benchmark_group("eip/algorithm");
    group.sample_size(10);
    for algo in
        [EipAlgorithm::Match, EipAlgorithm::Matchs, EipAlgorithm::Matchc, EipAlgorithm::DisVf2]
    {
        group.bench_function(BenchmarkId::from_parameter(format!("{algo:?}")), |b| {
            let cfg = EipConfig { eta: 1.5, d: Some(2), ..EipConfig::new(algo, 4) };
            b.iter(|| identify(&sg.graph, &sigma, &cfg).expect("valid").customers.len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("eip/sigma_count");
    group.sample_size(10);
    for count in [4, 8, 16] {
        group.bench_function(BenchmarkId::from_parameter(count), |b| {
            let cfg = EipConfig { eta: 1.5, d: Some(2), ..EipConfig::new(EipAlgorithm::Match, 4) };
            let subset = &sigma[..count.min(sigma.len())];
            b.iter(|| identify(&sg.graph, subset, &cfg).expect("valid").customers.len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("eip/workers");
    group.sample_size(10);
    for workers in [1, 2, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(workers), |b| {
            let cfg =
                EipConfig { eta: 1.5, d: Some(2), ..EipConfig::new(EipAlgorithm::Match, workers) };
            b.iter(|| identify(&sg.graph, &sigma, &cfg).expect("valid").customers.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eip);
criterion_main!(benches);
