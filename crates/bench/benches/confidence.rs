//! Metric computation benches: rule evaluation (support + BF confidence),
//! predicate statistics, the diversification objective, and the Exp-2
//! precision measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use gpar_bench::Workloads;
use gpar_core::{diff, evaluate, precision, q_stats, DiversifyParams, EvalOptions};
use gpar_datagen::{generate_rules, RuleGenConfig};
use gpar_graph::{FxHashSet, NodeId};

fn bench_metrics(c: &mut Criterion) {
    let sg = Workloads::pokec(500);
    let test = Workloads::pokec(500);
    let pred = sg.schema.predicate("music", 0).expect("family");
    let rules = generate_rules(
        &sg.graph,
        &pred,
        &RuleGenConfig { count: 4, pattern_nodes: 4, pattern_edges: 5, max_radius: 2, seed: 5 },
    );
    let rule = rules.first().expect("rule").clone();
    let opts = EvalOptions::default();

    c.bench_function("metrics/q_stats", |b| b.iter(|| q_stats(&sg.graph, &pred).candidates()));
    c.bench_function("metrics/evaluate_rule", |b| {
        b.iter(|| evaluate(&rule, &sg.graph, &opts).expect("eval").supp_r)
    });
    c.bench_function("metrics/precision_cross_graph", |b| {
        b.iter(|| precision(&rule, &test.graph, &opts))
    });

    // Diversification primitives on realistic match-set sizes.
    let s1: FxHashSet<NodeId> = (0..500).map(NodeId).collect();
    let s2: FxHashSet<NodeId> = (250..750).map(NodeId).collect();
    c.bench_function("metrics/diff_jaccard_500", |b| b.iter(|| diff(&s1, &s2)));
    let params = DiversifyParams::new(0.5, 10, 100.0);
    let items: Vec<(f64, &FxHashSet<NodeId>)> =
        (0..10).map(|i| (0.1 * i as f64, if i % 2 == 0 { &s1 } else { &s2 })).collect();
    c.bench_function("metrics/objective_f_k10", |b| {
        b.iter(|| gpar_core::objective_f(&params, &items))
    });
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
