//! Partitioning benches: site construction cost and balanced-vs-hash
//! assignment quality (the §6 skew report's code path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpar_bench::Workloads;
use gpar_partition::{partition_by_centers, partition_sites, PartitionStats, PartitionStrategy};

fn bench_partition(c: &mut Criterion) {
    let sg = Workloads::pokec(800);
    let centers: Vec<_> = sg.graph.nodes_with_label(sg.schema.user).collect();

    let mut group = c.benchmark_group("partition/sites");
    group.sample_size(10);
    for strategy in [PartitionStrategy::Balanced, PartitionStrategy::Hash] {
        group.bench_function(BenchmarkId::from_parameter(format!("{strategy:?}")), |b| {
            b.iter(|| partition_sites(&sg.graph, &centers, 2, 8, strategy).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("partition/fragments");
    group.sample_size(10);
    group.bench_function("balanced_d2_n8", |b| {
        b.iter(|| {
            partition_by_centers(&sg.graph, &centers, 2, 8, PartitionStrategy::Balanced).len()
        })
    });
    group.finish();

    // Report skew once (as a sanity side effect, not a timed bench).
    for strategy in [PartitionStrategy::Balanced, PartitionStrategy::Hash] {
        let parts = partition_sites(&sg.graph, &centers, 2, 8, strategy);
        let stats = PartitionStats::from_values(
            parts.iter().map(|p| p.iter().map(|s| s.load()).sum::<u64>() as f64),
        )
        .expect("non-empty");
        eprintln!("# site-load skew {strategy:?}: {:.2}%", 100.0 * stats.skew());
    }
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
