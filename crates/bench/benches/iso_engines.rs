//! Micro-benchmarks of the subgraph-isomorphism engines: the per-candidate
//! primitives every paper algorithm is built from. Early-termination vs
//! full-enumeration is the Match-vs-Matchc lever (§5.2); engine kinds are
//! the Match/Matchs/VF2 lever.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpar_bench::Workloads;
use gpar_datagen::{generate_rules, RuleGenConfig};
use gpar_iso::{Matcher, MatcherConfig, PatternSketchCache, SharedScratch};
use gpar_partition::CenterSite;

fn bench_engines(c: &mut Criterion) {
    let sg = Workloads::pokec(600);
    let pred = sg.schema.predicate("music", 0).expect("family");
    let rules = generate_rules(
        &sg.graph,
        &pred,
        &RuleGenConfig { count: 4, pattern_nodes: 5, pattern_edges: 7, max_radius: 2, seed: 3 },
    );
    let rule = rules.first().expect("rule generated").clone();
    let positives: Vec<_> = {
        let mut v: Vec<_> = gpar_core::q_stats(&sg.graph, &pred).positives.into_iter().collect();
        v.sort_unstable();
        v.truncate(32);
        v
    };
    let sites: Vec<CenterSite> =
        positives.iter().map(|&c| CenterSite::build(&sg.graph, c, 2)).collect();

    let mut group = c.benchmark_group("iso/exists_anchored");
    for (name, cfg) in [
        ("vf2", MatcherConfig::vf2()),
        ("degree_ordered", MatcherConfig::degree_ordered()),
        ("guided", MatcherConfig::guided()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            // One scratch arena + pattern-sketch cache per "worker", as
            // the EIP/mine/serve evaluators thread them.
            let scratch = SharedScratch::default();
            let psketch = PatternSketchCache::default();
            b.iter(|| {
                let mut hits = 0u32;
                for s in &sites {
                    let m = Matcher::new(s.graph(), cfg)
                        .with_scratch(scratch.clone())
                        .with_shared_pattern_cache(psketch.clone());
                    if m.exists_anchored(rule.pr(), rule.pr().x(), s.center) {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("iso/termination");
    group.bench_function("early_termination", |b| {
        let scratch = SharedScratch::default();
        b.iter(|| {
            let mut hits = 0u32;
            for s in &sites {
                let m = Matcher::new(s.graph(), MatcherConfig::vf2()).with_scratch(scratch.clone());
                hits += u32::from(m.exists_anchored(
                    rule.antecedent(),
                    rule.antecedent().x(),
                    s.center,
                ));
            }
            hits
        })
    });
    group.bench_function("full_enumeration", |b| {
        let scratch = SharedScratch::default();
        b.iter(|| {
            let mut total = 0u64;
            for s in &sites {
                let m = Matcher::new(s.graph(), MatcherConfig::vf2()).with_scratch(scratch.clone());
                total += m.count_anchored(rule.antecedent(), rule.antecedent().x(), s.center, None);
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
