//! Ablations of the design choices DESIGN.md calls out: each §5.2 EIP
//! optimization toggled independently, and DMine's bisimulation prefilter
//! vs pairwise automorphism grouping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpar_bench::Workloads;
use gpar_eip::{identify, EipAlgorithm, EipConfig, MatchOpts};
use gpar_mine::{DMine, DmineConfig, MineOpts};

fn bench_eip_ablation(c: &mut Criterion) {
    let sg = Workloads::pokec(500);
    let sigma = Workloads::sigma(&sg, "music", 16, 2);
    let base = MatchOpts::for_algorithm(EipAlgorithm::Match);

    let variants: Vec<(&str, MatchOpts)> = vec![
        ("full_match", base),
        ("no_early_termination", MatchOpts { early_termination: false, ..base }),
        ("no_sketch_guidance", MatchOpts { sketch_guidance: false, ..base }),
        ("no_subpattern_sharing", MatchOpts { subpattern_sharing: false, ..base }),
    ];
    let mut group = c.benchmark_group("ablation/eip");
    group.sample_size(10);
    for (name, opts) in variants {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let cfg = EipConfig {
                eta: 1.5,
                d: Some(2),
                opts: Some(opts),
                ..EipConfig::new(EipAlgorithm::Match, 4)
            };
            b.iter(|| identify(&sg.graph, &sigma, &cfg).expect("valid").customers.len())
        });
    }
    group.finish();
}

fn bench_mine_ablation(c: &mut Criterion) {
    let sg = Workloads::pokec(500);
    let pred = sg.schema.predicate("music", 0).expect("family");
    let all = MineOpts::all();
    let variants: Vec<(&str, MineOpts)> = vec![
        ("full_dmine", all),
        ("no_incremental_div", MineOpts { incremental_div: false, ..all }),
        ("no_reduction_rules", MineOpts { reduction_rules: false, ..all }),
        ("no_bisim_prefilter", MineOpts { bisim_prefilter: false, ..all }),
    ];
    let mut group = c.benchmark_group("ablation/mine");
    group.sample_size(10);
    for (name, opts) in variants {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let cfg = DmineConfig {
                k: 6,
                sigma: 5,
                d: 2,
                workers: 4,
                max_rounds: 2,
                opts,
                ..Default::default()
            };
            b.iter(|| DMine::new(cfg.clone()).run(&sg.graph, &pred).sigma_size)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eip_ablation, bench_mine_ablation);
criterion_main!(benches);
