//! Criterion counterpart of Figures 5(a)/5(e): DMine vs DMineno and
//! worker-count scaling, at a fixed small scale. The `figures` binary runs
//! the full parameter sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpar_bench::Workloads;
use gpar_mine::{DMine, DmineConfig, MineOpts};

fn bench_mine(c: &mut Criterion) {
    let sg = Workloads::pokec(500);
    let pred = sg.schema.predicate("music", 0).expect("family");

    let mk = |workers: usize, opts: MineOpts| DmineConfig {
        k: 6,
        sigma: 5,
        d: 2,
        workers,
        max_rounds: 2,
        opts,
        ..Default::default()
    };

    let mut group = c.benchmark_group("mine/workers");
    group.sample_size(10);
    for workers in [1, 2, 4] {
        group.bench_function(BenchmarkId::from_parameter(workers), |b| {
            b.iter(|| DMine::new(mk(workers, MineOpts::all())).run(&sg.graph, &pred).sigma_size)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mine/optimizations");
    group.sample_size(10);
    group.bench_function("dmine", |b| {
        b.iter(|| DMine::new(mk(4, MineOpts::all())).run(&sg.graph, &pred).sigma_size)
    });
    group.bench_function("dmine_no", |b| {
        b.iter(|| DMine::new(mk(4, MineOpts::none())).run(&sg.graph, &pred).sigma_size)
    });
    group.bench_function("naive_discover_then_diversify", |b| {
        b.iter(|| DMine::new(mk(4, MineOpts::naive())).run(&sg.graph, &pred).sigma_size)
    });
    group.finish();
}

criterion_group!(benches, bench_mine);
criterion_main!(benches);
