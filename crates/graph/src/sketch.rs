//! k-hop neighborhood label sketches (§5.2 "guided search").
//!
//! For each node `v`, the sketch `K(v)` is a list `{(1, D_1), …, (k, D_k)}`
//! where `D_i` is the distribution of node labels *within* `i` hops of `v`
//! (cumulative, matching the worked Example 10 in the paper, where `D_2`
//! repeats everything already reachable at hop 1).
//!
//! Cumulative layers make the sketch sound as a pruning filter for subgraph
//! *monomorphism*: a match `h` can only shrink distances, so every pattern
//! node within `i` hops of `u'` maps to a distinct data node within `i`
//! hops of `h(u')`. Hence if for some layer `i` and label `ℓ` the pattern
//! needs more `ℓ`-nodes than the data offers (`D_i − D'_i < 0` in the
//! paper's notation), `v'` cannot match `u'` and is pruned. The surplus
//! `Σ_i (D_i − D'_i)` is the paper's ranking score `f(u', v')`.

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use crate::neighborhood::{bfs_layers_with, NeighborhoodScratch};
use crate::view::GraphView;
use rustc_hash::FxHashMap;

/// A cumulative k-hop label-frequency sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    /// `layers[i]` holds label counts within `i+1` hops, sorted by label.
    layers: Vec<Vec<(Label, u32)>>,
}

impl Sketch {
    /// Builds the sketch of `v` in `g` with `k` layers.
    pub fn build<G: GraphView + ?Sized>(g: &G, v: NodeId, k: u32) -> Self {
        Self::build_with(g, v, k, &mut NeighborhoodScratch::new())
    }

    /// As [`Sketch::build`] but reusing `scratch` for the BFS and the
    /// per-hop label buckets — no hashing and, once the scratch has grown,
    /// no traversal-side allocation. Guided search builds one data sketch
    /// per scored candidate, so this is the matcher's hot constructor.
    pub fn build_with<G: GraphView + ?Sized>(
        g: &G,
        v: NodeId,
        k: u32,
        scratch: &mut NeighborhoodScratch,
    ) -> Self {
        let k = k as usize;
        if k == 0 {
            return Self { layers: Vec::new() };
        }
        bfs_layers_with(g, v, k as u32, scratch);
        // Bucket the neighborhood's labels by hop; buffer k + 1 holds the
        // cumulative concatenation.
        if scratch.labels.len() < k + 1 {
            scratch.labels.resize_with(k + 1, Vec::new);
        }
        let (buckets, rest) = scratch.labels.split_at_mut(k);
        let cum = &mut rest[0];
        for b in buckets.iter_mut() {
            b.clear();
        }
        cum.clear();
        for &(n, depth) in &scratch.layers {
            if depth == 0 {
                continue; // the center itself is not part of its neighborhood
            }
            buckets[depth as usize - 1].push(g.node_label(n));
        }
        // Cumulative: layer i counts every node within i + 1 hops, so each
        // layer is the sorted run-length encoding of the growing prefix.
        let mut layers = Vec::with_capacity(k);
        for bucket in buckets.iter() {
            cum.extend_from_slice(bucket);
            cum.sort_unstable();
            let mut layer: Vec<(Label, u32)> = Vec::new();
            for &l in cum.iter() {
                match layer.last_mut() {
                    Some(last) if last.0 == l => last.1 += 1,
                    _ => layer.push((l, 1)),
                }
            }
            layers.push(layer);
        }
        Self { layers }
    }

    /// Builds a sketch from pre-computed cumulative per-layer label counts.
    /// Used by the pattern crate to sketch pattern nodes.
    pub fn from_layer_maps(maps: Vec<FxHashMap<Label, u32>>) -> Self {
        let layers = maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(Label, u32)> = m.into_iter().collect();
                v.sort_unstable_by_key(|&(l, _)| l);
                v
            })
            .collect();
        Self { layers }
    }

    /// Number of layers `k`.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Count of `label` within `hop` hops (1-based hop index).
    pub fn count(&self, hop: usize, label: Label) -> u32 {
        debug_assert!(hop >= 1);
        let layer = &self.layers[hop - 1];
        match layer.binary_search_by_key(&label, |&(l, _)| l) {
            Ok(i) => layer[i].1,
            Err(_) => 0,
        }
    }

    /// Whether this (data) sketch can *cover* a pattern sketch: for every
    /// layer and label, the data count is at least the pattern count.
    /// Returns `false` exactly when the paper's mismatch condition
    /// `D_i − D'_i < 0` holds for some `i`.
    pub fn covers(&self, pattern: &Sketch) -> bool {
        let k = self.depth().min(pattern.depth());
        for i in 0..k {
            for &(l, need) in &pattern.layers[i] {
                if self.count(i + 1, l) < need {
                    return false;
                }
            }
        }
        true
    }

    /// The paper's guidance score `f(u', v') = Σ_i (D_i − D'_i)`: total
    /// frequency surplus of this (data) sketch over the pattern sketch,
    /// summed over labels the pattern mentions. Larger surplus ⇒ more
    /// likely to extend to a full match. Returns `None` on mismatch.
    pub fn surplus(&self, pattern: &Sketch) -> Option<i64> {
        let k = self.depth().min(pattern.depth());
        let mut total: i64 = 0;
        for i in 0..k {
            for &(l, need) in &pattern.layers[i] {
                let have = self.count(i + 1, l) as i64;
                let diff = have - need as i64;
                if diff < 0 {
                    return None;
                }
                total += diff;
            }
        }
        Some(total)
    }
}

/// Pre-computed sketches for a set of nodes of one graph.
#[derive(Debug, Clone)]
pub struct SketchIndex {
    k: u32,
    sketches: FxHashMap<NodeId, Sketch>,
}

impl SketchIndex {
    /// Builds sketches for `nodes` (typically the candidate centers `L`),
    /// sharing one traversal scratch across the whole set.
    pub fn build_for<G: GraphView + ?Sized>(
        g: &G,
        nodes: impl IntoIterator<Item = NodeId>,
        k: u32,
    ) -> Self {
        let mut scratch = NeighborhoodScratch::new();
        let sketches =
            nodes.into_iter().map(|v| (v, Sketch::build_with(g, v, k, &mut scratch))).collect();
        Self { k, sketches }
    }

    /// Builds sketches for every node of `g`. Only use on small graphs or
    /// fragments; for big graphs prefer [`SketchIndex::build_for`].
    pub fn build_all(g: &Graph, k: u32) -> Self {
        Self::build_for(g, g.nodes(), k)
    }

    /// Sketch depth `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The sketch of `v`, if indexed.
    pub fn get(&self, v: NodeId) -> Option<&Sketch> {
        self.sketches.get(&v)
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::label::Vocab;

    /// Star: center cust with 3 `like`-> restaurant, 1 `friend`-> cust;
    /// the friend has 1 `like`-> restaurant.
    fn star() -> (Graph, NodeId, NodeId) {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let cust = vocab.intern("cust");
        let rest = vocab.intern("restaurant");
        let like = vocab.intern("like");
        let friend = vocab.intern("friend");
        let c = b.add_node(cust);
        let f = b.add_node(cust);
        b.add_edge(c, f, friend);
        for _ in 0..3 {
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
        }
        let r = b.add_node(rest);
        b.add_edge(f, r, like);
        (b.build(), c, f)
    }

    #[test]
    fn sketch_layers_are_cumulative() {
        let (g, c, _) = star();
        let rest = g.vocab().get("restaurant").unwrap();
        let cust = g.vocab().get("cust").unwrap();
        let s = Sketch::build(&g, c, 2);
        assert_eq!(s.count(1, rest), 3);
        assert_eq!(s.count(1, cust), 1);
        // Hop 2 adds the friend's restaurant, cumulatively.
        assert_eq!(s.count(2, rest), 4);
        assert_eq!(s.count(2, cust), 1);
    }

    #[test]
    fn covers_and_surplus_agree() {
        let (g, c, f) = star();
        let rest = g.vocab().get("restaurant").unwrap();
        let sc = Sketch::build(&g, c, 2);
        let sf = Sketch::build(&g, f, 2);
        // "pattern" needing 2 restaurants within 1 hop.
        let mut need = FxHashMap::default();
        need.insert(rest, 2u32);
        let pat = Sketch::from_layer_maps(vec![need.clone(), need]);
        assert!(sc.covers(&pat));
        assert!(sc.surplus(&pat).is_some());
        assert!(!sf.covers(&pat)); // friend has only 1 restaurant at hop 1
        assert_eq!(sf.surplus(&pat), None);
    }

    #[test]
    fn surplus_ranks_richer_neighborhoods_higher() {
        let (g, c, f) = star();
        let rest = g.vocab().get("restaurant").unwrap();
        let mut need = FxHashMap::default();
        need.insert(rest, 1u32);
        let pat = Sketch::from_layer_maps(vec![need]);
        let sc = Sketch::build(&g, c, 2).surplus(&pat).unwrap();
        let sf = Sketch::build(&g, f, 2).surplus(&pat).unwrap();
        assert!(sc > sf, "center has more like-edges, so a larger surplus");
    }

    #[test]
    fn index_builds_for_selected_nodes() {
        let (g, c, f) = star();
        let idx = SketchIndex::build_for(&g, [c], 2);
        assert_eq!(idx.len(), 1);
        assert!(idx.get(c).is_some());
        assert!(idx.get(f).is_none());
        let all = SketchIndex::build_all(&g, 2);
        assert_eq!(all.len(), g.node_count());
    }
}
