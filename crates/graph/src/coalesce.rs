//! Update coalescing: folds a burst of [`GraphUpdate`] batches into the
//! smallest equivalent batch sequence, preserving *sequential semantics
//! exactly* — applying the coalesced output to an overlay yields the
//! same final state (and the same per-update accept/reject decisions)
//! as applying the inputs one at a time.
//!
//! The serving layer's write pipeline sits a [`Coalescer`] in front of
//! the snapshot publisher: a burst of small updates becomes one
//! diff/commit/repair/publish cycle instead of N, which is where the
//! sustained-write-throughput win comes from (the d-ball repair pass,
//! not the overlay mutation, dominates update cost).
//!
//! ## Net semantics
//!
//! Edges are a set, so the net effect of any op sequence on one
//! `(src, dst, label)` key is decided by the **last** op: a
//! delete+reinsert pair cancels to "present", an insert+delete pair to
//! "absent". Relabels of one node collapse to the final label (chains
//! collapse; a chain netting back to the original is dropped by
//! [`DeltaGraph::diff`]). Node appends concatenate — id assignment is
//! dense and order-preserving, so every input batch's appended ids are
//! identical to sequential application. A node removal voids the
//! window's still-pending inserts and relabels touching it (their net
//! effect is cascaded away anyway, and a net batch may not relabel or
//! attach edges to a node it removes).
//!
//! ## Segments
//!
//! One [`GraphUpdate`] cannot express "append a node and remove it":
//! removals may only reference pre-batch ids. When an input removes a
//! node appended earlier in the same window, the accumulated net batch
//! is **sealed** and a new segment opened — the removal references the
//! sealed segment's appends, which are pre-batch ids relative to it.
//! [`Coalescer::finish`] therefore returns an ordered batch *sequence*
//! (almost always of length 1) to apply atomically.
//!
//! Validation replays [`DeltaGraph::validate`] against the virtual
//! post-window state, so an input the sequential path would reject is
//! rejected here with the same [`UpdateInvalid`] — and rejected inputs
//! leave the window state untouched.

use crate::delta::{DeltaGraph, GraphUpdate, UpdateInvalid};
use crate::graph::NodeId;
use crate::label::Label;
use crate::view::GraphView;
use rustc_hash::{FxHashMap, FxHashSet};

/// What a finished window coalesced: inputs absorbed vs net output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceSummary {
    /// Input batches absorbed into the window.
    pub updates: usize,
    /// Primitive ops (appends + edges + relabels + removals) absorbed.
    pub ops_in: usize,
    /// Primitive ops surviving in the net output.
    pub ops_out: usize,
    /// Net batches emitted (> 1 only when a window-created node was
    /// removed, forcing a segment seal).
    pub segments: usize,
}

/// One accumulating net batch (see the module docs for segment rules).
#[derive(Debug)]
struct Segment {
    /// Virtual node count when this segment opened; ids `>= n0` are
    /// appended by this segment itself.
    n0: usize,
    new_nodes: Vec<Label>,
    /// Net relabels in first-touch order; `None` slots were voided by a
    /// node removal.
    relabels: Vec<Option<(NodeId, Label)>>,
    relabel_idx: FxHashMap<NodeId, usize>,
    /// Net edge ops in first-touch order: `Some(true)` insert,
    /// `Some(false)` delete, `None` voided.
    edge_ops: Vec<((NodeId, NodeId, Label), Option<bool>)>,
    edge_idx: FxHashMap<(NodeId, NodeId, Label), usize>,
    del_nodes: Vec<NodeId>,
}

impl Segment {
    fn open(n0: usize) -> Self {
        Self {
            n0,
            new_nodes: Vec::new(),
            relabels: Vec::new(),
            relabel_idx: FxHashMap::default(),
            edge_ops: Vec::new(),
            edge_idx: FxHashMap::default(),
            del_nodes: Vec::new(),
        }
    }

    fn set_edge_op(&mut self, key: (NodeId, NodeId, Label), insert: bool) {
        match self.edge_idx.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.edge_ops[*e.get()].1 = Some(insert);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.edge_ops.len());
                self.edge_ops.push((key, Some(insert)));
            }
        }
    }

    /// Voids pending inserts and relabels touching `w`: the net batch
    /// may not reference a node it removes, and their effect is
    /// cascaded away by the removal regardless.
    fn purge_node(&mut self, w: NodeId) {
        if let Some(i) = self.relabel_idx.remove(&w) {
            self.relabels[i] = None;
        }
        for ((s, d, _), op) in self.edge_ops.iter_mut() {
            if *op == Some(true) && (*s == w || *d == w) {
                *op = None;
            }
        }
        // Keep the index entries of voided edge ops: a later re-insert
        // on the same key is impossible (validation rejects edges at a
        // removed node), and deletes of a removed node's edges are
        // no-ops either way.
    }

    fn into_update(self) -> GraphUpdate {
        let n0 = self.n0;
        let mut del_edges = Vec::new();
        let mut new_edges = Vec::new();
        for (key @ (s, d, _), op) in self.edge_ops {
            match op {
                Some(true) => new_edges.push(key),
                // A net delete on an edge whose endpoint this segment
                // itself appended: the edge cannot predate the segment
                // (its insert was voided by the same-window delete), so
                // the op nets to nothing — and a batch may not delete
                // edges at its own appended ids.
                Some(false) if s.index() >= n0 || d.index() >= n0 => {}
                Some(false) => del_edges.push(key),
                None => {}
            }
        }
        GraphUpdate {
            new_nodes: self.new_nodes,
            new_edges,
            relabels: self.relabels.into_iter().flatten().collect(),
            del_edges,
            del_nodes: self.del_nodes,
        }
    }
}

/// Folds a window of update batches into a minimal equivalent batch
/// sequence. See the module docs for the exact semantics.
#[derive(Debug)]
pub struct Coalescer {
    /// Sealed segments, oldest first.
    sealed: Vec<Segment>,
    /// The accumulating segment; `None` until the first push.
    open: Option<Segment>,
    /// Node count of the overlay the window opened on.
    window_n0: usize,
    /// Nodes appended anywhere in the window.
    appended: usize,
    /// Nodes removed anywhere in the window.
    removed: FxHashSet<NodeId>,
    updates: usize,
    ops_in: usize,
}

impl Default for Coalescer {
    fn default() -> Self {
        Self::new()
    }
}

impl Coalescer {
    /// An empty window.
    pub fn new() -> Self {
        Self {
            sealed: Vec::new(),
            open: None,
            window_n0: 0,
            appended: 0,
            removed: FxHashSet::default(),
            updates: 0,
            ops_in: 0,
        }
    }

    /// Whether any batch was absorbed.
    pub fn is_empty(&self) -> bool {
        self.updates == 0
    }

    /// Input batches absorbed so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Nodes appended by the window so far. With the window opened on an
    /// overlay of `n0` nodes, the next absorbed batch's appends are
    /// assigned ids starting at `n0 + appended()` — identical to
    /// sequential application, which is how the write pipeline reports
    /// exact per-submitter assigned ids.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Absorbs one batch, exactly as if it were applied to `g` after
    /// every previously absorbed batch. Returns the same
    /// [`UpdateInvalid`] the sequential path would; a rejected batch
    /// changes nothing (in the window or the overlay). `g` must be the
    /// same overlay state for every push of one window.
    pub fn push(&mut self, g: &DeltaGraph, update: &GraphUpdate) -> Result<(), UpdateInvalid> {
        if self.open.is_none() {
            self.window_n0 = GraphView::node_count(g);
            self.open = Some(Segment::open(self.window_n0));
        }
        let n_pre = self.window_n0 + self.appended;
        crate::check_id_capacity(n_pre, update.new_nodes.len())?;
        let n = n_pre + update.new_nodes.len();
        let window_removed = &self.removed;
        let removed_virtual = move |v: NodeId| g.is_removed(v) || window_removed.contains(&v);

        // Validation mirrors `DeltaGraph::validate` (same checks, same
        // order, so the same error surfaces) against the virtual state.
        for &w in &update.del_nodes {
            if w.index() >= n_pre {
                return Err(UpdateInvalid::NodeOutOfRange(w));
            }
        }
        for &(s, d, _) in &update.del_edges {
            for v in [s, d] {
                if v.index() >= n_pre {
                    return Err(UpdateInvalid::NodeOutOfRange(v));
                }
            }
        }
        let batch_removed: FxHashSet<NodeId> = update.del_nodes.iter().copied().collect();
        for &(v, _) in &update.relabels {
            if v.index() >= n {
                return Err(UpdateInvalid::NodeOutOfRange(v));
            }
            if removed_virtual(v) || batch_removed.contains(&v) {
                return Err(UpdateInvalid::NodeRemoved(v));
            }
        }
        for &(s, d, _) in &update.new_edges {
            for v in [s, d] {
                if v.index() >= n {
                    return Err(UpdateInvalid::NodeOutOfRange(v));
                }
                if removed_virtual(v) || batch_removed.contains(&v) {
                    return Err(UpdateInvalid::NodeRemoved(v));
                }
            }
        }

        // Seal before absorbing if this batch removes a node the open
        // segment appended: one batch cannot remove its own appends.
        let open_n0 = self.open.as_ref().expect("opened above").n0;
        if update.del_nodes.iter().any(|w| w.index() >= open_n0 && !removed_virtual(*w)) {
            self.sealed.push(std::mem::replace(
                self.open.as_mut().expect("opened above"),
                Segment::open(n_pre),
            ));
        }
        let seg = self.open.as_mut().expect("opened above");

        // Absorb in intra-batch op order: appends, relabels, edge
        // deletions, node removals, edge inserts.
        seg.new_nodes.extend(&update.new_nodes);
        self.appended += update.new_nodes.len();
        for &(v, l) in &update.relabels {
            match seg.relabel_idx.entry(v) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    seg.relabels[*e.get()] = Some((v, l));
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(seg.relabels.len());
                    seg.relabels.push(Some((v, l)));
                }
            }
        }
        for &(s, d, l) in &update.del_edges {
            seg.set_edge_op((s, d, l), false);
        }
        for &w in &update.del_nodes {
            if g.is_removed(w) || self.removed.contains(&w) {
                continue;
            }
            self.removed.insert(w);
            seg.del_nodes.push(w);
            seg.purge_node(w);
        }
        for &(s, d, l) in &update.new_edges {
            seg.set_edge_op((s, d, l), true);
        }

        self.updates += 1;
        self.ops_in += update.new_nodes.len()
            + update.new_edges.len()
            + update.relabels.len()
            + update.del_edges.len()
            + update.del_nodes.len();
        Ok(())
    }

    /// Closes the window: the net batch sequence (apply in order) plus
    /// the coalescing summary.
    pub fn finish(mut self) -> (Vec<GraphUpdate>, CoalesceSummary) {
        let mut batches: Vec<GraphUpdate> = self
            .sealed
            .drain(..)
            .chain(self.open.take())
            .map(Segment::into_update)
            .filter(|u| !u.is_empty())
            .collect();
        // An all-voided window still owes the caller one (empty) batch
        // shape only if nothing survived; drop empties entirely.
        let ops_out = batches
            .iter()
            .map(|u| {
                u.new_nodes.len()
                    + u.new_edges.len()
                    + u.relabels.len()
                    + u.del_edges.len()
                    + u.del_nodes.len()
            })
            .sum();
        let summary = CoalesceSummary {
            updates: self.updates,
            ops_in: self.ops_in,
            ops_out,
            segments: batches.len(),
        };
        batches.shrink_to_fit();
        (batches, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::Graph;
    use crate::label::Vocab;
    use std::sync::Arc;

    fn base() -> (Arc<Graph>, Vec<NodeId>, [Label; 4]) {
        let vocab = Vocab::new();
        let a = vocab.intern("a");
        let b = vocab.intern("b");
        let e1 = vocab.intern("e1");
        let e2 = vocab.intern("e2");
        let mut gb = GraphBuilder::new(vocab);
        let vs: Vec<NodeId> = (0..4).map(|i| gb.add_node(if i % 2 == 0 { a } else { b })).collect();
        gb.add_edge(vs[0], vs[1], e1);
        gb.add_edge(vs[1], vs[2], e1);
        gb.add_edge(vs[2], vs[3], e2);
        (Arc::new(gb.build()), vs, [a, b, e1, e2])
    }

    /// Applies `updates` one at a time; the coalesced equivalent must
    /// land on a state-identical overlay.
    fn assert_equivalent(g: &Arc<Graph>, updates: &[GraphUpdate]) -> CoalesceSummary {
        let mut sequential = DeltaGraph::new(g.clone());
        for u in updates {
            sequential.apply(u);
        }
        let coalesced_view = DeltaGraph::new(g.clone());
        let mut co = Coalescer::new();
        for u in updates {
            co.push(&coalesced_view, u).expect("sequentially-valid batch");
        }
        let (batches, summary) = co.finish();
        let mut coalesced = coalesced_view;
        for b in &batches {
            coalesced.apply(b);
        }
        let n = GraphView::node_count(&sequential);
        assert_eq!(GraphView::node_count(&coalesced), n);
        assert_eq!(GraphView::edge_count(&coalesced), GraphView::edge_count(&sequential));
        for v in (0..n as u32).map(NodeId) {
            assert_eq!(coalesced.is_removed(v), sequential.is_removed(v), "{v}");
            if !sequential.is_removed(v) {
                assert_eq!(
                    GraphView::node_label(&coalesced, v),
                    GraphView::node_label(&sequential, v),
                    "{v}"
                );
            }
            assert_eq!(
                coalesced.out_view(v).merged().collect::<Vec<_>>(),
                sequential.out_view(v).merged().collect::<Vec<_>>(),
                "{v}"
            );
        }
        summary
    }

    #[test]
    fn delete_then_reinsert_cancels() {
        let (g, vs, [_, _, e1, _]) = base();
        let del = GraphUpdate { del_edges: vec![(vs[0], vs[1], e1)], ..Default::default() };
        let ins = GraphUpdate { new_edges: vec![(vs[0], vs[1], e1)], ..Default::default() };
        let s = assert_equivalent(&g, &[del, ins]);
        assert_eq!(s.updates, 2);
        assert_eq!(s.ops_in, 2);
        assert_eq!(s.ops_out, 1, "last op wins: a single net insert survives");
        // And the inverse order nets to a single delete.
        let ins = GraphUpdate { new_edges: vec![(vs[0], vs[3], e1)], ..Default::default() };
        let del = GraphUpdate { del_edges: vec![(vs[0], vs[3], e1)], ..Default::default() };
        let s = assert_equivalent(&g, &[ins, del]);
        assert_eq!(s.ops_out, 1, "net delete of a base-absent edge survives as a no-op delete");
    }

    #[test]
    fn relabel_chains_collapse() {
        let (g, vs, [a, b, _, _]) = base();
        let u1 = GraphUpdate { relabels: vec![(vs[0], b)], ..Default::default() };
        let u2 = GraphUpdate { relabels: vec![(vs[0], a)], ..Default::default() };
        let u3 = GraphUpdate { relabels: vec![(vs[0], b)], ..Default::default() };
        let s = assert_equivalent(&g, &[u1, u2, u3]);
        assert_eq!(s.ops_in, 3);
        assert_eq!(s.ops_out, 1, "chain collapses to the final label");
    }

    #[test]
    fn insert_then_delete_on_a_window_created_node_vanishes() {
        let (g, vs, [a, _, e1, _]) = base();
        let create = GraphUpdate {
            new_nodes: vec![a],
            new_edges: vec![(vs[0], NodeId(4), e1)],
            ..Default::default()
        };
        let del = GraphUpdate { del_edges: vec![(vs[0], NodeId(4), e1)], ..Default::default() };
        let s = assert_equivalent(&g, &[create, del]);
        assert_eq!(s.ops_out, 1, "only the node append survives; the edge round-trip vanishes");
    }

    #[test]
    fn removal_voids_pending_ops_and_window_created_removal_seals() {
        let (g, vs, [a, b, e1, _]) = base();
        // Pending relabel + insert on v3, then remove v3.
        let touch = GraphUpdate {
            relabels: vec![(vs[3], a)],
            new_edges: vec![(vs[0], vs[3], e1)],
            ..Default::default()
        };
        let remove = GraphUpdate { del_nodes: vec![vs[3]], ..Default::default() };
        let s = assert_equivalent(&g, &[touch, remove]);
        assert_eq!(s.segments, 1, "no window-created node removed: one net batch");
        assert_eq!(s.ops_out, 1, "only the removal survives");

        // Append a node, then remove it: forces a seal.
        let create = GraphUpdate { new_nodes: vec![b], ..Default::default() };
        let remove = GraphUpdate { del_nodes: vec![NodeId(4)], ..Default::default() };
        let s = assert_equivalent(&g, &[create, remove]);
        assert_eq!(s.segments, 2, "removing a window-created node seals the segment");
    }

    #[test]
    fn rejections_match_sequential_validation_and_leave_the_window_intact() {
        let (g, vs, [a, _, e1, _]) = base();
        let view = DeltaGraph::new(g.clone());
        let mut co = Coalescer::new();
        co.push(&view, &GraphUpdate { del_nodes: vec![vs[3]], ..Default::default() }).unwrap();
        // Edge to the node removed earlier in the window: rejected like
        // the sequential path would after committing the first batch.
        let bad = GraphUpdate { new_edges: vec![(vs[0], vs[3], e1)], ..Default::default() };
        assert_eq!(co.push(&view, &bad), Err(UpdateInvalid::NodeRemoved(vs[3])));
        // Relabel of a node the same batch removes.
        let bad = GraphUpdate {
            relabels: vec![(vs[1], a)],
            del_nodes: vec![vs[1]],
            ..Default::default()
        };
        assert_eq!(co.push(&view, &bad), Err(UpdateInvalid::NodeRemoved(vs[1])));
        // Out-of-range reference.
        let bad = GraphUpdate { new_edges: vec![(vs[0], NodeId(99), e1)], ..Default::default() };
        assert_eq!(co.push(&view, &bad), Err(UpdateInvalid::NodeOutOfRange(NodeId(99))));
        // The window still nets to exactly the accepted removal.
        let (batches, summary) = co.finish();
        assert_eq!(summary.updates, 1);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].del_nodes, vec![vs[3]]);
    }

    #[test]
    fn appended_ids_are_sequential_across_the_window() {
        let (g, _, [a, b, _, _]) = base();
        let view = DeltaGraph::new(g.clone());
        let mut co = Coalescer::new();
        assert_eq!(co.appended(), 0);
        co.push(&view, &GraphUpdate { new_nodes: vec![a, b], ..Default::default() }).unwrap();
        assert_eq!(co.appended(), 2);
        co.push(&view, &GraphUpdate { new_nodes: vec![a], ..Default::default() }).unwrap();
        assert_eq!(co.appended(), 3);
        let (batches, _) = co.finish();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].new_nodes, vec![a, b, a], "appends concatenate in order");
    }
}
