//! The delta-graph overlay: a frozen base CSR plus append-only mutation
//! logs, read through the same [`GraphView`] surface as the base.
//!
//! Live serving cannot afford a full CSR rebuild per edge insert: the
//! paper's locality property (§4.2) says a radius-`d` evaluation at `v_x`
//! only ever reads `G_d(v_x)`, so an update touching `(u, v)` can only
//! change answers whose d-ball reaches `u` or `v` — everything else,
//! including its cached extraction, stays valid. [`DeltaGraph`] is the
//! substrate for that: updates append to per-node overlay runs in
//! `O(log)`-probe-compatible `(label, endpoint)` order, reads merge base
//! and overlay lazily, and [`DeltaGraph::compact`] folds the logs back
//! into a fresh CSR.
//!
//! Supported mutations are *inserts, relabels and deletions*: new nodes,
//! new edges (possibly to new nodes), node label changes, edge deletions
//! and node removals. Deleted base edges are **tombstoned** — recorded in
//! per-node tombstone runs that the [`EdgeView`] merge subtracts — and a
//! removed node drops out of [`GraphView::nodes`], label membership,
//! histograms and every adjacency (its incident edges are cascaded into
//! tombstones / removed from the insert log), while its id stays a dead
//! slot until compaction. Node ids are therefore stable across any update
//! sequence; only [`DeltaGraph::compact`] re-densifies them, returning a
//! [`NodeRemap`] so id-keyed state (caches, candidate indexes, ledgers)
//! can follow.
//!
//! ## Batch semantics
//!
//! Within one [`GraphUpdate`], operations apply in this order: node
//! appends, relabels, edge deletions, node removals (cascading their
//! incident edges), edge insertions. Hence a batch that deletes and
//! re-inserts the same edge nets to the edge being **present**
//! (delete-then-reinsert). Deletions may only reference pre-batch nodes;
//! a batch may not relabel or attach edges to a node that is already
//! removed or that the batch itself removes ([`UpdateInvalid`]).

use crate::builder::build_label_index;
use crate::graph::{Edge, Graph, NodeId};
use crate::label::{Label, Vocab};
use crate::view::{EdgeView, GraphView};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// One batch of graph mutations, applied atomically by
/// [`DeltaGraph::apply`] (see the module docs for intra-batch ordering).
#[derive(Debug, Clone, Default)]
pub struct GraphUpdate {
    /// Labels of nodes to append; ids are assigned densely in order,
    /// starting at the pre-update `node_count()`.
    pub new_nodes: Vec<Label>,
    /// Directed labeled edges to insert. Endpoints may reference nodes
    /// added by this same update. Edges already present are ignored.
    pub new_edges: Vec<(NodeId, NodeId, Label)>,
    /// `(node, new_label)` label changes. No-op relabels are ignored.
    pub relabels: Vec<(NodeId, Label)>,
    /// Directed labeled edges to delete. Edges not present (including
    /// edges of already-removed nodes) are ignored. Applied *before*
    /// `new_edges`, so delete + insert of the same edge in one batch nets
    /// to the edge being present.
    pub del_edges: Vec<(NodeId, NodeId, Label)>,
    /// Nodes to remove. All incident edges are deleted with them;
    /// already-removed nodes are ignored. May only reference pre-batch
    /// node ids.
    pub del_nodes: Vec<NodeId>,
}

impl GraphUpdate {
    /// Whether the update carries no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.new_nodes.is_empty()
            && self.new_edges.is_empty()
            && self.relabels.is_empty()
            && self.del_edges.is_empty()
            && self.del_nodes.is_empty()
    }
}

/// Why [`DeltaGraph::validate`] rejects an update. The whole batch is
/// checked before any mutation, so a rejected batch changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateInvalid {
    /// A referenced node id is out of range (`>= node_count()` counting
    /// the update's own node appends; deletions may only reference
    /// pre-batch ids).
    NodeOutOfRange(NodeId),
    /// A relabel or new edge references a node that is removed — either
    /// before this batch or by this batch's own `del_nodes`.
    NodeRemoved(NodeId),
    /// Appending this batch's `new_nodes` would overflow the `u32` node
    /// id space (ids are dense, so capacity is `u32::MAX` live-or-dead
    /// slots; the batch is rejected whole rather than truncating ids).
    IdSpaceExhausted {
        /// Current overlay node count (live + tombstoned slots).
        have: usize,
        /// Nodes the rejected batch tried to append.
        adding: usize,
    },
}

/// Maximum number of node id slots an overlay can address: ids are dense
/// `u32`s, and `NodeId(u32::MAX)` is reserved as a sentinel by callers.
pub const MAX_NODE_SLOTS: usize = u32::MAX as usize;

/// Checks that appending `adding` nodes to an overlay holding `have`
/// slots stays within the addressable id space. Shared by
/// [`DeltaGraph::validate`] and the serving layer's batch admission so
/// both reject at the same boundary; unit-testable without materializing
/// a four-billion-node graph.
pub fn check_id_capacity(have: usize, adding: usize) -> Result<(), UpdateInvalid> {
    if have.checked_add(adding).is_none_or(|n| n > MAX_NODE_SLOTS) {
        return Err(UpdateInvalid::IdSpaceExhausted { have, adding });
    }
    Ok(())
}

impl std::fmt::Display for UpdateInvalid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateInvalid::NodeOutOfRange(v) => {
                write!(f, "update references node {v} out of range")
            }
            UpdateInvalid::NodeRemoved(v) => {
                write!(f, "update references removed node {v}")
            }
            UpdateInvalid::IdSpaceExhausted { have, adding } => {
                write!(
                    f,
                    "appending {adding} nodes to {have} existing id slots \
                     would overflow the u32 node id space"
                )
            }
        }
    }
}

impl std::error::Error for UpdateInvalid {}

/// What [`DeltaGraph::apply`] actually changed, after deduplication.
/// Produced without mutating by [`DeltaGraph::diff`]; realized by
/// [`DeltaGraph::commit`].
#[derive(Debug, Clone, Default)]
pub struct AppliedUpdate {
    /// Ids assigned to `new_nodes`, in input order.
    pub assigned: Vec<NodeId>,
    /// Every node whose incident structure or label changed: endpoints of
    /// effectively-new and effectively-deleted edges, effectively-relabeled
    /// nodes, new nodes, and removed nodes. Sorted, deduplicated. This is
    /// the seed set for d-ball invalidation (note that for deletions the
    /// seeds must be traversed on the **pre-update** view as well — see
    /// `gpar-serve`'s union-ball rule).
    pub touched: Vec<NodeId>,
    /// Effective (non-duplicate) edge inserts, as applied.
    pub added_edges: Vec<(NodeId, NodeId, Label)>,
    /// Effective relabels as `(node, old_label, new_label)`.
    pub relabeled: Vec<(NodeId, Label, Label)>,
    /// Effective edge deletions (edges that actually existed), including
    /// the incident edges cascaded from node removals.
    pub removed_edges: Vec<(NodeId, NodeId, Label)>,
    /// Effective node removals as `(node, label_at_removal)`.
    pub removed_nodes: Vec<(NodeId, Label)>,
}

/// The result of [`DeltaGraph::compact`]: the merged CSR plus, when node
/// removals re-densified the id space, the old→new id map.
#[derive(Debug, Clone)]
pub struct CompactedGraph {
    /// The fully-merged CSR graph.
    pub graph: Graph,
    /// `None` when no nodes were removed: every surviving id is unchanged
    /// and anything keyed by `NodeId` remains valid. `Some` when removal
    /// slots were squeezed out: surviving nodes keep their relative order
    /// but get new dense ids, and id-keyed state must be translated.
    pub remap: Option<NodeRemap>,
}

/// Old-id → new-id translation produced by a compaction that dropped
/// removed node slots. The map is monotone on survivors, so translating a
/// sorted id list keeps it sorted.
#[derive(Debug, Clone)]
pub struct NodeRemap {
    /// `forward[old] = new`, with `u32::MAX` marking a removed slot.
    forward: Vec<u32>,
    live: usize,
}

const DEAD: u32 = u32::MAX;

impl NodeRemap {
    /// The new id of `old`, or `None` if the node was removed.
    #[inline]
    pub fn get(&self, old: NodeId) -> Option<NodeId> {
        match self.forward.get(old.index()) {
            Some(&n) if n != DEAD => Some(NodeId(n)),
            _ => None,
        }
    }

    /// Size of the pre-compaction id space.
    pub fn old_len(&self) -> usize {
        self.forward.len()
    }

    /// Number of surviving (live) nodes — the post-compaction node count.
    pub fn new_len(&self) -> usize {
        self.live
    }

    /// The inverse translation as a dense table: `inverse()[new.index()]`
    /// is the pre-compaction id of post-compaction node `new`. Every new
    /// id has exactly one old id, so the table is total.
    pub fn inverse(&self) -> Vec<NodeId> {
        let mut back = vec![NodeId(0); self.live];
        for (old, &new) in self.forward.iter().enumerate() {
            if new != DEAD {
                back[new as usize] = NodeId(old as u32);
            }
        }
        back
    }
}

/// A sorted per-node edge-log map shared copy-on-write between overlay
/// clones: the map and every run are behind `Arc`s, so cloning a
/// [`DeltaGraph`] is a few pointer bumps and a mutation clones only the
/// map spine plus the one run it touches.
type EdgeLog = Arc<FxHashMap<NodeId, Arc<Vec<Edge>>>>;

/// A base CSR [`Graph`] plus append-only mutation logs, readable through
/// [`GraphView`] exactly like the base.
///
/// Every overlay collection is `Arc`-shared copy-on-write, so `clone()`
/// is cheap (a handful of refcount bumps) regardless of overlay size —
/// the property the serving layer's snapshot publishing relies on to
/// build the next view off to the side while readers keep the previous
/// one. Mutating a clone unshares only what it touches
/// ([`Arc::make_mut`]).
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: Arc<Graph>,
    /// Labels of appended nodes; node `base.node_count() + i` has label
    /// `new_node_labels[i]`.
    new_node_labels: Arc<Vec<Label>>,
    /// Label overrides for *base* nodes. Invariant: the stored label
    /// always differs from the base label (a relabel back to the original
    /// removes the entry), so `len()` counts real divergences.
    relabels: Arc<FxHashMap<NodeId, Label>>,
    /// Per-node inserted out-edges, each run sorted by `(label, target)`
    /// and disjoint from the base run.
    out_delta: EdgeLog,
    /// Mirror of `out_delta` keyed by target, sorted by `(label, source)`.
    in_delta: EdgeLog,
    /// Per-node tombstoned (deleted) *base* out-edges, each run sorted by
    /// `(label, target)` and a subset of the base run.
    out_tombs: EdgeLog,
    /// Mirror of `out_tombs` keyed by target, sorted by `(label, source)`.
    in_tombs: EdgeLog,
    /// Removed node ids (dead slots until compaction). A removed node has
    /// no live incident edges: they were tombstoned / dropped from the
    /// insert log when it was removed.
    removed: Arc<FxHashSet<NodeId>>,
    /// Total inserted edges (Σ of `out_delta` run lengths).
    delta_edge_count: usize,
    /// Total tombstoned base edges (Σ of `out_tombs` run lengths).
    tomb_edge_count: usize,
}

impl DeltaGraph {
    /// An overlay with no pending deltas.
    pub fn new(base: Arc<Graph>) -> Self {
        Self {
            base,
            new_node_labels: Arc::default(),
            relabels: Arc::default(),
            out_delta: Arc::default(),
            in_delta: Arc::default(),
            out_tombs: Arc::default(),
            in_tombs: Arc::default(),
            removed: Arc::default(),
            delta_edge_count: 0,
            tomb_edge_count: 0,
        }
    }

    /// The frozen base CSR.
    pub fn base(&self) -> &Arc<Graph> {
        &self.base
    }

    /// Nodes appended since the base was frozen (including any appended
    /// node that was later removed).
    pub fn delta_node_count(&self) -> usize {
        self.new_node_labels.len()
    }

    /// Edges inserted since the base was frozen and still live.
    pub fn delta_edge_count(&self) -> usize {
        self.delta_edge_count
    }

    /// Base edges deleted (tombstoned) since the base was frozen.
    pub fn tomb_edge_count(&self) -> usize {
        self.tomb_edge_count
    }

    /// Nodes removed since the base was frozen (dead id slots).
    pub fn removed_node_count(&self) -> usize {
        self.removed.len()
    }

    /// Whether `v` is a removed (dead) node id.
    #[inline]
    pub fn is_removed(&self, v: NodeId) -> bool {
        !self.removed.is_empty() && self.removed.contains(&v)
    }

    /// Base nodes whose label currently diverges from the base CSR.
    pub fn relabel_count(&self) -> usize {
        self.relabels.len()
    }

    /// Whether the overlay carries no deltas (reads are pure base reads).
    pub fn is_clean(&self) -> bool {
        self.new_node_labels.is_empty()
            && self.relabels.is_empty()
            && self.delta_edge_count == 0
            && self.tomb_edge_count == 0
            && self.removed.is_empty()
    }

    /// Checks a whole batch against the current overlay **before** any
    /// mutation: every referenced node must be in range, deletions may
    /// only reference pre-batch ids, and relabels / new edges must not
    /// reference removed nodes (pre-existing or removed by this batch).
    pub fn validate(&self, update: &GraphUpdate) -> Result<(), UpdateInvalid> {
        let n0 = GraphView::node_count(self);
        check_id_capacity(n0, update.new_nodes.len())?;
        let n = n0 + update.new_nodes.len();
        for &w in &update.del_nodes {
            if w.index() >= n0 {
                return Err(UpdateInvalid::NodeOutOfRange(w));
            }
        }
        for &(s, d, _) in &update.del_edges {
            for v in [s, d] {
                if v.index() >= n0 {
                    return Err(UpdateInvalid::NodeOutOfRange(v));
                }
            }
        }
        let batch_removed: FxHashSet<NodeId> = update.del_nodes.iter().copied().collect();
        for &(v, _) in &update.relabels {
            if v.index() >= n {
                return Err(UpdateInvalid::NodeOutOfRange(v));
            }
            if self.is_removed(v) || batch_removed.contains(&v) {
                return Err(UpdateInvalid::NodeRemoved(v));
            }
        }
        for &(s, d, _) in &update.new_edges {
            for v in [s, d] {
                if v.index() >= n {
                    return Err(UpdateInvalid::NodeOutOfRange(v));
                }
                if self.is_removed(v) || batch_removed.contains(&v) {
                    return Err(UpdateInvalid::NodeRemoved(v));
                }
            }
        }
        Ok(())
    }

    /// Computes the *effective* mutations of `update` against the current
    /// overlay without applying anything: duplicate / pre-existing edges,
    /// no-op relabels, deletions of absent edges and removals of
    /// already-removed nodes are all dropped. Callers that need the
    /// pre-update view between planning and application (the serving
    /// layer's pre-update invalidation BFS) call this, read, then
    /// [`DeltaGraph::commit`]; everyone else uses [`DeltaGraph::apply`].
    pub fn diff(&self, update: &GraphUpdate) -> Result<AppliedUpdate, UpdateInvalid> {
        self.validate(update)?;
        let mut applied = AppliedUpdate::default();
        let n0 = GraphView::node_count(self);

        for i in 0..update.new_nodes.len() {
            let id = NodeId((n0 + i) as u32);
            applied.assigned.push(id);
            applied.touched.push(id);
        }

        // Relabels: chained relabels within the batch see earlier results
        // and coalesce to one *net* `(old, final)` transition per node —
        // a chain netting back to the original label is dropped entirely.
        let mut pending_label: FxHashMap<NodeId, Label> = FxHashMap::default();
        let mut first_old: FxHashMap<NodeId, Label> = FxHashMap::default();
        let label_of = |pending: &FxHashMap<NodeId, Label>, v: NodeId| {
            pending.get(&v).copied().unwrap_or_else(|| {
                if v.index() >= n0 {
                    update.new_nodes[v.index() - n0]
                } else {
                    GraphView::node_label(self, v)
                }
            })
        };
        for &(v, new) in &update.relabels {
            let old = label_of(&pending_label, v);
            if old == new {
                continue;
            }
            first_old.entry(v).or_insert(old);
            pending_label.insert(v, new);
        }
        for (&v, &old) in &first_old {
            let fin = label_of(&pending_label, v);
            if fin != old {
                applied.relabeled.push((v, old, fin));
                applied.touched.push(v);
            }
        }
        applied.relabeled.sort_unstable_by_key(|&(v, _, _)| v);

        // Edge deletions (explicit), then node removals (cascade).
        let mut deleted: FxHashSet<(NodeId, NodeId, Label)> = FxHashSet::default();
        for &(s, d, l) in &update.del_edges {
            if !self.has_edge_view(s, d, l) || !deleted.insert((s, d, l)) {
                continue;
            }
            applied.removed_edges.push((s, d, l));
            applied.touched.push(s);
            applied.touched.push(d);
        }
        let mut removing: FxHashSet<NodeId> = FxHashSet::default();
        for &w in &update.del_nodes {
            if self.is_removed(w) || !removing.insert(w) {
                continue;
            }
            for e in self.out_view(w).iter() {
                if deleted.insert((w, e.node, e.label)) {
                    applied.removed_edges.push((w, e.node, e.label));
                    applied.touched.push(e.node);
                }
            }
            for e in self.in_view(w).iter() {
                if deleted.insert((e.node, w, e.label)) {
                    applied.removed_edges.push((e.node, w, e.label));
                    applied.touched.push(e.node);
                }
            }
            applied.removed_nodes.push((w, label_of(&pending_label, w)));
            applied.touched.push(w);
        }

        // Edge inserts: deduplicate against the post-deletion state and
        // within the batch.
        let mut added: FxHashSet<(NodeId, NodeId, Label)> = FxHashSet::default();
        for &(s, d, l) in &update.new_edges {
            let exists = self.has_edge_view(s, d, l) && !deleted.contains(&(s, d, l));
            if exists || !added.insert((s, d, l)) {
                continue;
            }
            applied.added_edges.push((s, d, l));
            applied.touched.push(s);
            applied.touched.push(d);
        }

        applied.touched.sort_unstable();
        applied.touched.dedup();
        Ok(applied)
    }

    /// Applies the effective mutations previously produced by
    /// [`DeltaGraph::diff`] on this exact overlay state. `update` must be
    /// the batch `applied` was diffed from (it supplies the appended-node
    /// labels); passing a mismatched pair corrupts the overlay.
    pub fn commit(&mut self, update: &GraphUpdate, applied: &AppliedUpdate) {
        debug_assert_eq!(applied.assigned.len(), update.new_nodes.len());
        if !update.new_nodes.is_empty() {
            Arc::make_mut(&mut self.new_node_labels).extend(&update.new_nodes);
        }
        for &(v, _, new) in &applied.relabeled {
            if v.index() >= self.base.node_count() {
                Arc::make_mut(&mut self.new_node_labels)[v.index() - self.base.node_count()] = new;
            } else if self.base.node_label(v) == new {
                Arc::make_mut(&mut self.relabels).remove(&v);
            } else {
                Arc::make_mut(&mut self.relabels).insert(v, new);
            }
        }
        for &(s, d, l) in &applied.removed_edges {
            self.delete_edge_inner(s, d, l);
        }
        for &(w, _) in &applied.removed_nodes {
            // The label override of a dead slot is meaningless; drop it so
            // label membership never has to consult the removed set twice.
            Arc::make_mut(&mut self.relabels).remove(&w);
            Arc::make_mut(&mut self.removed).insert(w);
        }
        for &(s, d, l) in &applied.added_edges {
            self.insert_edge_inner(s, d, l);
        }
    }

    /// Applies one update batch: [`DeltaGraph::diff`] + [`DeltaGraph::commit`].
    /// Duplicate edges, no-op relabels and deletions of absent elements
    /// are dropped; the returned [`AppliedUpdate`] reports only
    /// *effective* mutations.
    ///
    /// # Panics
    /// Panics if [`DeltaGraph::validate`] rejects the batch. The whole
    /// batch is validated **before** any mutation, so a panicking call
    /// leaves the overlay exactly as it was.
    pub fn apply(&mut self, update: &GraphUpdate) -> AppliedUpdate {
        let applied = match self.diff(update) {
            Ok(a) => a,
            Err(e) => panic!("{e}"),
        };
        self.commit(update, &applied);
        applied
    }

    /// Deletes one live edge: from the insert log if it was a pending
    /// insert, otherwise by tombstoning the base entry.
    fn delete_edge_inner(&mut self, src: NodeId, dst: NodeId, label: Label) {
        let e = Edge { label, node: dst };
        let mirror = Edge { label, node: src };
        if remove_sorted(&mut self.out_delta, src, e) {
            let ok = remove_sorted(&mut self.in_delta, dst, mirror);
            debug_assert!(ok, "in/out delta runs diverged");
            self.delta_edge_count -= 1;
            return;
        }
        debug_assert!(
            self.base_has_edge(src, dst, label),
            "effective deletion of an edge that exists nowhere"
        );
        if insert_sorted_log(&mut self.out_tombs, src, e) {
            let ok = insert_sorted_log(&mut self.in_tombs, dst, mirror);
            debug_assert!(ok, "in/out tombstone runs diverged");
            self.tomb_edge_count += 1;
        } else {
            debug_assert!(false, "edge tombstoned twice");
        }
    }

    /// Inserts one edge known to be absent from the current view: by
    /// clearing its tombstone if it is a deleted base edge (the base entry
    /// resurfaces), otherwise by appending to the insert log.
    fn insert_edge_inner(&mut self, src: NodeId, dst: NodeId, label: Label) {
        let e = Edge { label, node: dst };
        let mirror = Edge { label, node: src };
        if remove_sorted(&mut self.out_tombs, src, e) {
            let ok = remove_sorted(&mut self.in_tombs, dst, mirror);
            debug_assert!(ok, "in/out tombstone runs diverged");
            self.tomb_edge_count -= 1;
            return;
        }
        // `insert_sorted` is a hard dedup guarantee: even if a duplicate
        // slipped past the planning layer, the run is left intact and the
        // edge is simply not double-counted.
        if !insert_sorted_log(&mut self.out_delta, src, e) {
            debug_assert!(false, "duplicate edge reached insert_edge_inner");
            return;
        }
        let ok = insert_sorted_log(&mut self.in_delta, dst, mirror);
        debug_assert!(ok, "in/out delta runs diverged");
        self.delta_edge_count += 1;
    }

    fn base_has_edge(&self, src: NodeId, dst: NodeId, label: Label) -> bool {
        src.index() < self.base.node_count()
            && self.base.out_edges(src).binary_search(&Edge { label, node: dst }).is_ok()
    }

    /// Merges all pending deltas into a fresh CSR [`Graph`].
    ///
    /// When no nodes were removed, ids are preserved exactly (appends are
    /// dense, relabels in place) and `remap` is `None` — anything keyed by
    /// `NodeId` remains valid against the compacted graph. When removals
    /// left dead slots, the survivors are re-densified (keeping their
    /// relative order) and `remap` carries the old→new translation.
    ///
    /// Per-node adjacency is produced by merge-minus over the three
    /// already-sorted runs, so compaction is `O(|V| + |E|)` plus the
    /// label-index sort — no full edge re-sort as in
    /// [`crate::GraphBuilder::build`].
    pub fn compact(&self) -> CompactedGraph {
        let id_space = GraphView::node_count(self);
        let mut forward: Vec<u32> = Vec::with_capacity(id_space);
        let mut node_labels = Vec::with_capacity(id_space - self.removed.len());
        for v in 0..id_space as u32 {
            if self.is_removed(NodeId(v)) {
                forward.push(DEAD);
            } else {
                forward.push(node_labels.len() as u32);
                node_labels.push(GraphView::node_label(self, NodeId(v)));
            }
        }
        let n = node_labels.len();
        let total_edges = self.base.edge_count() + self.delta_edge_count - self.tomb_edge_count;
        let merge = |view: fn(&Self, NodeId) -> EdgeView<'_>| {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut adj = Vec::with_capacity(total_edges);
            offsets.push(0u32);
            for v in 0..id_space as u32 {
                if self.is_removed(NodeId(v)) {
                    continue;
                }
                // Surviving endpoints only: edges touching a removed node
                // were tombstoned when it was removed. The remap is
                // monotone, so the merged (label, endpoint) order holds.
                adj.extend(view(self, NodeId(v)).merged().map(|e| {
                    let new = forward[e.node.index()];
                    debug_assert_ne!(new, DEAD, "live edge points at a removed node");
                    Edge { label: e.label, node: NodeId(new) }
                }));
                offsets.push(adj.len() as u32);
            }
            (offsets, adj)
        };
        let (out_offsets, out_adj) = merge(GraphView::out_view);
        let (in_offsets, in_adj) = merge(GraphView::in_view);
        let (label_nodes, label_starts) = build_label_index(&node_labels);
        let graph = Graph {
            node_labels,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            label_nodes,
            label_starts,
            vocab: self.base.vocab().clone(),
        };
        let remap = (!self.removed.is_empty()).then_some(NodeRemap { forward, live: n });
        CompactedGraph { graph, remap }
    }
}

/// Removes `e` from the sorted run stored under `key`, dropping the map
/// entry when the run empties. Returns whether the edge was present.
/// Probes the shared log first so an absent edge unshares nothing.
fn remove_sorted(map: &mut EdgeLog, key: NodeId, e: Edge) -> bool {
    let Some(i) = map.get(&key).and_then(|run| run.binary_search(&e).ok()) else {
        return false;
    };
    let map = Arc::make_mut(map);
    let run = map.get_mut(&key).expect("probed above");
    let run_vec = Arc::make_mut(run);
    run_vec.remove(i);
    if run_vec.is_empty() {
        map.remove(&key);
    }
    true
}

/// Inserts `e` into the sorted run stored under `key` (see
/// [`insert_sorted`] for the dedup guarantee), creating the run when
/// absent. Probes the shared log first so a duplicate unshares nothing.
fn insert_sorted_log(map: &mut EdgeLog, key: NodeId, e: Edge) -> bool {
    if let Some(run) = map.get(&key) {
        if run.binary_search(&e).is_ok() {
            return false;
        }
    }
    insert_sorted(Arc::make_mut(Arc::make_mut(map).entry(key).or_default()), e)
}

/// Inserts `e` into a `(label, endpoint)`-sorted run, keeping it sorted.
/// Duplicates are **skipped**, never inserted — dedup is a hard guarantee
/// of this function, not a caller contract: a duplicate silently reaching
/// a run would corrupt its sorted-set invariant and double-count matches
/// downstream. Returns whether the edge was inserted. Runs are per-node
/// logs — short in any realistic update stream — so the `O(len)` shift is
/// irrelevant next to the probe savings of keeping them binary-searchable.
fn insert_sorted(run: &mut Vec<Edge>, e: Edge) -> bool {
    match run.binary_search(&e) {
        Ok(_) => false,
        Err(i) => {
            run.insert(i, e);
            true
        }
    }
}

impl GraphView for DeltaGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.base.node_count() + self.new_node_labels.len()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.base.edge_count() + self.delta_edge_count - self.tomb_edge_count
    }

    #[inline]
    fn vocab(&self) -> &Arc<Vocab> {
        self.base.vocab()
    }

    #[inline]
    fn node_label(&self, v: NodeId) -> Label {
        let nb = self.base.node_count();
        if v.index() >= nb {
            self.new_node_labels[v.index() - nb]
        } else if let Some(&l) = self.relabels.get(&v) {
            l
        } else {
            self.base.node_label(v)
        }
    }

    #[inline]
    fn out_view(&self, v: NodeId) -> EdgeView<'_> {
        EdgeView {
            base: if v.index() < self.base.node_count() { self.base.out_edges(v) } else { &[] },
            delta: self.out_delta.get(&v).map(|r| r.as_slice()).unwrap_or(&[]),
            tombs: if self.out_tombs.is_empty() {
                &[]
            } else {
                self.out_tombs.get(&v).map(|r| r.as_slice()).unwrap_or(&[])
            },
        }
    }

    #[inline]
    fn in_view(&self, v: NodeId) -> EdgeView<'_> {
        EdgeView {
            base: if v.index() < self.base.node_count() { self.base.in_edges(v) } else { &[] },
            delta: self.in_delta.get(&v).map(|r| r.as_slice()).unwrap_or(&[]),
            tombs: if self.in_tombs.is_empty() {
                &[]
            } else {
                self.in_tombs.get(&v).map(|r| r.as_slice()).unwrap_or(&[])
            },
        }
    }

    fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..GraphView::node_count(self) as u32).map(NodeId).filter(|&v| !self.is_removed(v))
    }

    fn label_members(&self, label: Label) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .base
            .nodes_with_label_slice(label)
            .iter()
            .copied()
            .filter(|v| !self.relabels.contains_key(v) && !self.is_removed(*v))
            .collect();
        // Removed nodes never keep a relabel override (commit drops it),
        // so the override scan needs no removed filter.
        out.extend(self.relabels.iter().filter(|&(_, &l)| l == label).map(|(&v, _)| v));
        let nb = self.base.node_count() as u32;
        out.extend(
            self.new_node_labels
                .iter()
                .enumerate()
                .filter(|&(i, &l)| l == label && !self.is_removed(NodeId(nb + i as u32)))
                .map(|(i, _)| NodeId(nb + i as u32)),
        );
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::label::Vocab;

    /// Id-space capacity at the exact `u32` boundary: the last slot is
    /// grantable, one past it is a typed rejection (never a truncated
    /// id), and the arithmetic itself cannot overflow `usize`.
    #[test]
    fn id_capacity_rejects_exactly_at_the_u32_boundary() {
        assert_eq!(check_id_capacity(MAX_NODE_SLOTS - 1, 1), Ok(()));
        assert_eq!(check_id_capacity(0, MAX_NODE_SLOTS), Ok(()));
        assert_eq!(
            check_id_capacity(MAX_NODE_SLOTS, 1),
            Err(UpdateInvalid::IdSpaceExhausted { have: MAX_NODE_SLOTS, adding: 1 })
        );
        assert_eq!(
            check_id_capacity(MAX_NODE_SLOTS - 1, 2),
            Err(UpdateInvalid::IdSpaceExhausted { have: MAX_NODE_SLOTS - 1, adding: 2 })
        );
        // `have + adding` overflowing usize must reject, not wrap.
        assert_eq!(
            check_id_capacity(usize::MAX, 2),
            Err(UpdateInvalid::IdSpaceExhausted { have: usize::MAX, adding: 2 })
        );
    }

    fn base() -> (Arc<Graph>, Vec<NodeId>, [Label; 4]) {
        let vocab = Vocab::new();
        let a = vocab.intern("a");
        let b = vocab.intern("b");
        let e1 = vocab.intern("e1");
        let e2 = vocab.intern("e2");
        let mut gb = GraphBuilder::new(vocab);
        let vs: Vec<NodeId> = (0..4).map(|i| gb.add_node(if i % 2 == 0 { a } else { b })).collect();
        gb.add_edge(vs[0], vs[1], e1);
        gb.add_edge(vs[1], vs[2], e1);
        gb.add_edge(vs[2], vs[3], e2);
        (Arc::new(gb.build()), vs, [a, b, e1, e2])
    }

    #[test]
    fn clean_overlay_reads_like_the_base() {
        let (g, vs, [a, _, e1, _]) = base();
        let d = DeltaGraph::new(g.clone());
        assert!(d.is_clean());
        assert_eq!(GraphView::node_count(&d), g.node_count());
        assert_eq!(GraphView::edge_count(&d), g.edge_count());
        assert_eq!(GraphView::node_label(&d, vs[0]), a);
        assert!(d.has_edge_view(vs[0], vs[1], e1));
        assert!(!d.has_edge_view(vs[1], vs[0], e1));
        assert_eq!(d.label_members(a), vec![vs[0], vs[2]]);
    }

    #[test]
    fn apply_inserts_nodes_edges_and_relabels() {
        let (g, vs, [a, b, e1, e2]) = base();
        let mut d = DeltaGraph::new(g);
        let applied = d.apply(&GraphUpdate {
            new_nodes: vec![a],
            new_edges: vec![(vs[3], NodeId(4), e1), (vs[0], vs[2], e2)],
            relabels: vec![(vs[1], a)],
            ..Default::default()
        });
        assert_eq!(applied.assigned, vec![NodeId(4)]);
        assert_eq!(applied.added_edges.len(), 2);
        assert_eq!(applied.relabeled, vec![(vs[1], b, a)]);
        assert_eq!(applied.touched, vec![vs[0], vs[1], vs[2], vs[3], NodeId(4)]);
        assert_eq!(GraphView::node_count(&d), 5);
        assert!(d.has_edge_view(vs[3], NodeId(4), e1));
        assert!(d.has_edge_view(vs[0], vs[2], e2));
        assert_eq!(GraphView::node_label(&d, vs[1]), a);
        assert_eq!(d.label_members(a), vec![vs[0], vs[1], vs[2], NodeId(4)]);
        assert_eq!(d.label_members(b), vec![vs[3]]);
        // In-view mirrors the insert.
        assert!(d.in_view(NodeId(4)).contains(Edge { label: e1, node: vs[3] }));
    }

    #[test]
    fn duplicates_and_noop_relabels_are_dropped() {
        let (g, vs, [a, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        let applied = d.apply(&GraphUpdate {
            new_nodes: vec![],
            // Already in base; repeated in batch; genuinely new.
            new_edges: vec![(vs[0], vs[1], e1), (vs[0], vs[3], e1), (vs[0], vs[3], e1)],
            relabels: vec![(vs[0], a)], // no-op: already labeled a
            ..Default::default()
        });
        assert_eq!(applied.added_edges, vec![(vs[0], vs[3], e1)]);
        assert!(applied.relabeled.is_empty());
        assert_eq!(applied.touched, vec![vs[0], vs[3]]);
        // Re-applying the same batch is now a full no-op.
        let again =
            d.apply(&GraphUpdate { new_edges: vec![(vs[0], vs[3], e1)], ..Default::default() });
        assert!(again.added_edges.is_empty());
        assert!(again.touched.is_empty());
    }

    #[test]
    fn relabel_back_to_base_label_clears_the_override() {
        let (g, vs, [a, b, _, _]) = base();
        let mut d = DeltaGraph::new(g);
        d.apply(&GraphUpdate { relabels: vec![(vs[0], b)], ..Default::default() });
        assert_eq!(d.relabel_count(), 1);
        let back = d.apply(&GraphUpdate { relabels: vec![(vs[0], a)], ..Default::default() });
        assert_eq!(d.relabel_count(), 0);
        assert!(d.is_clean());
        assert_eq!(back.relabeled, vec![(vs[0], b, a)]);
    }

    #[test]
    fn chained_relabels_coalesce_to_the_net_transition() {
        let (g, vs, [a, b, _, _]) = base();
        let mut d = DeltaGraph::new(g);
        // a -> b -> a nets to nothing.
        let noop =
            d.apply(&GraphUpdate { relabels: vec![(vs[0], b), (vs[0], a)], ..Default::default() });
        assert!(noop.relabeled.is_empty());
        assert!(d.is_clean());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics_without_mutating() {
        let (g, vs, [_, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        d.apply(&GraphUpdate { new_edges: vec![(vs[0], NodeId(99), e1)], ..Default::default() });
    }

    #[test]
    fn delete_base_edge_tombstones_every_read_path() {
        let (g, vs, [a, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g.clone());
        let applied =
            d.apply(&GraphUpdate { del_edges: vec![(vs[0], vs[1], e1)], ..Default::default() });
        assert_eq!(applied.removed_edges, vec![(vs[0], vs[1], e1)]);
        assert_eq!(applied.touched, vec![vs[0], vs[1]]);
        assert!(!d.has_edge_view(vs[0], vs[1], e1));
        assert!(!d.in_view(vs[1]).contains(Edge { label: e1, node: vs[0] }));
        assert_eq!(GraphView::edge_count(&d), g.edge_count() - 1);
        assert_eq!(d.tomb_edge_count(), 1);
        assert!(!d.is_clean());
        // Labels and membership untouched.
        assert_eq!(d.label_members(a), vec![vs[0], vs[2]]);
        // Deleting it again (or a never-present edge) is a no-op.
        let again = d.apply(&GraphUpdate {
            del_edges: vec![(vs[0], vs[1], e1), (vs[3], vs[0], e1)],
            ..Default::default()
        });
        assert!(again.removed_edges.is_empty());
        assert!(again.touched.is_empty());
    }

    #[test]
    fn delete_pending_insert_cancels_the_log_entry() {
        let (g, vs, [_, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        d.apply(&GraphUpdate { new_edges: vec![(vs[0], vs[3], e1)], ..Default::default() });
        assert_eq!(d.delta_edge_count(), 1);
        d.apply(&GraphUpdate { del_edges: vec![(vs[0], vs[3], e1)], ..Default::default() });
        assert_eq!(d.delta_edge_count(), 0);
        assert_eq!(d.tomb_edge_count(), 0, "pending inserts are dropped, not tombstoned");
        assert!(d.is_clean());
        assert!(!d.has_edge_view(vs[0], vs[3], e1));
    }

    #[test]
    fn reinsert_clears_the_tombstone_instead_of_logging() {
        let (g, vs, [_, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        d.apply(&GraphUpdate { del_edges: vec![(vs[0], vs[1], e1)], ..Default::default() });
        let back =
            d.apply(&GraphUpdate { new_edges: vec![(vs[0], vs[1], e1)], ..Default::default() });
        assert_eq!(back.added_edges, vec![(vs[0], vs[1], e1)]);
        assert!(d.has_edge_view(vs[0], vs[1], e1));
        assert_eq!((d.delta_edge_count(), d.tomb_edge_count()), (0, 0));
        assert!(d.is_clean(), "delete + reinsert round-trips to a clean overlay");
    }

    #[test]
    fn delete_then_reinsert_in_one_batch_nets_to_present() {
        let (g, vs, [_, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        let applied = d.apply(&GraphUpdate {
            del_edges: vec![(vs[0], vs[1], e1)],
            new_edges: vec![(vs[0], vs[1], e1)],
            ..Default::default()
        });
        assert_eq!(applied.removed_edges, vec![(vs[0], vs[1], e1)]);
        assert_eq!(applied.added_edges, vec![(vs[0], vs[1], e1)]);
        assert!(d.has_edge_view(vs[0], vs[1], e1));
        assert!(d.is_clean(), "tombstone + un-tombstone cancel out");
    }

    #[test]
    fn node_removal_cascades_incident_edges_and_hides_the_node() {
        let (g, vs, [a, b, e1, e2]) = base();
        let mut d = DeltaGraph::new(g.clone());
        // Give v2 a pending insert too, so the cascade covers both runs.
        d.apply(&GraphUpdate { new_edges: vec![(vs[0], vs[2], e2)], ..Default::default() });
        let applied = d.apply(&GraphUpdate { del_nodes: vec![vs[2]], ..Default::default() });
        assert_eq!(applied.removed_nodes, vec![(vs[2], a)]);
        let mut gone = applied.removed_edges.clone();
        gone.sort_unstable();
        assert_eq!(
            gone,
            vec![(vs[0], vs[2], e2), (vs[1], vs[2], e1), (vs[2], vs[3], e2)],
            "both directions and the pending insert cascade"
        );
        // Touched: the node and all its former neighbors.
        assert_eq!(applied.touched, vec![vs[0], vs[1], vs[2], vs[3]]);
        assert!(d.is_removed(vs[2]));
        assert_eq!(d.removed_node_count(), 1);
        // Adjacency of the dead slot and of its neighbors is consistent.
        assert!(d.out_view(vs[2]).is_empty());
        assert!(d.in_view(vs[2]).is_empty());
        assert!(!d.has_edge_view(vs[1], vs[2], e1));
        assert!(!d.in_view(vs[3]).contains(Edge { label: e2, node: vs[2] }));
        // nodes(), label membership and histograms exclude the dead slot.
        let live: Vec<NodeId> = d.nodes().collect();
        assert_eq!(live, vec![vs[0], vs[1], vs[3]]);
        assert_eq!(d.label_members(a), vec![vs[0]]);
        assert_eq!(d.node_histogram().get(&a), Some(&1));
        assert_eq!(d.node_histogram().get(&b), Some(&2));
        assert_eq!(GraphView::edge_count(&d), 1, "only v0 -e1-> v1 survives");
        // Removing it again is a no-op.
        let again = d.apply(&GraphUpdate { del_nodes: vec![vs[2]], ..Default::default() });
        assert!(again.removed_nodes.is_empty());
        assert!(again.touched.is_empty());
    }

    #[test]
    fn removal_cascade_handles_self_loops_once() {
        let (g, vs, [_, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        d.apply(&GraphUpdate { new_edges: vec![(vs[3], vs[3], e1)], ..Default::default() });
        let applied = d.apply(&GraphUpdate { del_nodes: vec![vs[3]], ..Default::default() });
        // The self-loop appears in both the out- and in-view but must be
        // reported (and deleted) exactly once.
        assert_eq!(
            applied.removed_edges.iter().filter(|&&(s, t, _)| s == vs[3] && t == vs[3]).count(),
            1
        );
        assert_eq!(d.delta_edge_count(), 0);
    }

    #[test]
    fn updates_referencing_removed_nodes_are_rejected() {
        let (g, vs, [a, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        d.apply(&GraphUpdate { del_nodes: vec![vs[3]], ..Default::default() });
        let err = d
            .validate(&GraphUpdate { new_edges: vec![(vs[0], vs[3], e1)], ..Default::default() })
            .unwrap_err();
        assert_eq!(err, UpdateInvalid::NodeRemoved(vs[3]));
        let err = d
            .validate(&GraphUpdate { relabels: vec![(vs[3], a)], ..Default::default() })
            .unwrap_err();
        assert_eq!(err, UpdateInvalid::NodeRemoved(vs[3]));
        // Same within one batch: remove + attach is contradictory.
        let err = d
            .validate(&GraphUpdate {
                del_nodes: vec![vs[1]],
                new_edges: vec![(vs[0], vs[1], e1)],
                ..Default::default()
            })
            .unwrap_err();
        assert_eq!(err, UpdateInvalid::NodeRemoved(vs[1]));
        // Deleting edges of a removed node is a legitimate no-op, not an error.
        let ok =
            d.apply(&GraphUpdate { del_edges: vec![(vs[2], vs[3], e1)], ..Default::default() });
        assert!(ok.removed_edges.is_empty());
        // Deletions may not reference ids the batch itself appends.
        let err = d
            .validate(&GraphUpdate {
                new_nodes: vec![a],
                del_nodes: vec![NodeId(4)],
                ..Default::default()
            })
            .unwrap_err();
        assert_eq!(err, UpdateInvalid::NodeOutOfRange(NodeId(4)));
    }

    #[test]
    fn diff_is_pure_and_commit_realizes_it() {
        let (g, vs, [a, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g.clone());
        let update = GraphUpdate {
            new_nodes: vec![a],
            new_edges: vec![(vs[0], NodeId(4), e1)],
            del_edges: vec![(vs[1], vs[2], e1)],
            ..Default::default()
        };
        let applied = d.diff(&update).unwrap();
        assert!(d.is_clean(), "diff must not mutate");
        assert_eq!(GraphView::node_count(&d), g.node_count());
        d.commit(&update, &applied);
        assert_eq!(GraphView::node_count(&d), g.node_count() + 1);
        assert!(d.has_edge_view(vs[0], NodeId(4), e1));
        assert!(!d.has_edge_view(vs[1], vs[2], e1));
    }

    /// The hard dedup guarantee of `insert_sorted`, independent of
    /// `debug_assert!` — this test is exercised by the release-profile CI
    /// leg (`cargo test --release`), where a silent duplicate would
    /// corrupt the sorted run and double-count matches.
    #[test]
    fn duplicate_insert_is_skipped_not_corrupted() {
        let e = |l: u32, n: u32| Edge { label: Label(l), node: NodeId(n) };
        let mut run = vec![e(1, 0), e(1, 2), e(2, 1)];
        assert!(!insert_sorted(&mut run, e(1, 2)), "duplicate must be rejected");
        assert_eq!(run, vec![e(1, 0), e(1, 2), e(2, 1)], "run is untouched");
        assert!(insert_sorted(&mut run, e(1, 1)));
        assert!(run.is_sorted());
        assert_eq!(run.len(), 4);
    }

    #[test]
    fn compact_equals_builder_materialization() {
        let (g, vs, [a, b, e1, e2]) = base();
        let mut d = DeltaGraph::new(g.clone());
        d.apply(&GraphUpdate {
            new_nodes: vec![b, a],
            new_edges: vec![
                (NodeId(4), vs[0], e2),
                (vs[0], NodeId(5), e1),
                (vs[0], vs[3], e1),
                (NodeId(4), NodeId(5), e1),
            ],
            relabels: vec![(vs[2], b)],
            ..Default::default()
        });
        let compacted = d.compact();
        assert!(compacted.remap.is_none(), "no removals: ids are stable");
        let compacted = compacted.graph;

        // Independent materialization through the builder.
        let mut gb = GraphBuilder::new(g.vocab().clone());
        for v in 0..GraphView::node_count(&d) as u32 {
            gb.add_node(GraphView::node_label(&d, NodeId(v)));
        }
        for v in 0..g.node_count() as u32 {
            for e in g.out_edges(NodeId(v)) {
                gb.add_edge(NodeId(v), e.node, e.label);
            }
        }
        gb.add_edge(NodeId(4), vs[0], e2);
        gb.add_edge(vs[0], NodeId(5), e1);
        gb.add_edge(vs[0], vs[3], e1);
        gb.add_edge(NodeId(4), NodeId(5), e1);
        let expect = gb.build();

        assert_eq!(compacted.node_count(), expect.node_count());
        assert_eq!(compacted.edge_count(), expect.edge_count());
        for v in 0..expect.node_count() as u32 {
            let v = NodeId(v);
            assert_eq!(compacted.node_label(v), expect.node_label(v));
            assert_eq!(compacted.out_edges(v), expect.out_edges(v), "{v}");
            assert_eq!(compacted.in_edges(v), expect.in_edges(v), "{v}");
            let l = expect.node_label(v);
            assert_eq!(compacted.nodes_with_label_slice(l), expect.nodes_with_label_slice(l));
        }
        // Compacting a clean overlay round-trips.
        let clean = DeltaGraph::new(Arc::new(compacted));
        let again = clean.compact();
        assert!(again.remap.is_none());
        assert_eq!(again.graph.node_count(), expect.node_count());
        assert_eq!(again.graph.edge_count(), expect.edge_count());
    }

    #[test]
    fn compact_with_removals_densifies_and_remaps() {
        let (g, vs, [a, b, e1, e2]) = base();
        let mut d = DeltaGraph::new(g.clone());
        d.apply(&GraphUpdate {
            new_nodes: vec![a],
            new_edges: vec![(vs[3], NodeId(4), e1)],
            del_edges: vec![(vs[0], vs[1], e1)],
            del_nodes: vec![vs[2]],
            ..Default::default()
        });
        let CompactedGraph { graph: compacted, remap } = d.compact();
        let remap = remap.expect("removals force a remap");
        assert_eq!(remap.old_len(), 5);
        assert_eq!(remap.new_len(), 4);
        assert_eq!(remap.get(vs[2]), None, "removed slot has no new id");
        assert_eq!(remap.get(vs[0]), Some(NodeId(0)));
        assert_eq!(remap.get(vs[1]), Some(NodeId(1)));
        assert_eq!(remap.get(vs[3]), Some(NodeId(2)), "survivors keep relative order");
        assert_eq!(remap.get(NodeId(4)), Some(NodeId(3)));
        assert_eq!(remap.get(NodeId(99)), None);

        // Independent materialization of the survivor graph.
        let mut gb = GraphBuilder::new(g.vocab().clone());
        for l in [a, b, b, a] {
            gb.add_node(l);
        }
        // Surviving edges: v3 -e1-> new node (v0 -e1-> v1 deleted, the
        // rest were incident to v2).
        gb.add_edge(NodeId(2), NodeId(3), e1);
        let expect = gb.build();
        assert_eq!(compacted.node_count(), expect.node_count());
        assert_eq!(compacted.edge_count(), expect.edge_count());
        for v in 0..expect.node_count() as u32 {
            let v = NodeId(v);
            assert_eq!(compacted.node_label(v), expect.node_label(v), "{v}");
            assert_eq!(compacted.out_edges(v), expect.out_edges(v), "{v}");
            assert_eq!(compacted.in_edges(v), expect.in_edges(v), "{v}");
        }
        assert_eq!(compacted.nodes_with_label_slice(a).len(), 2);
        assert_eq!(compacted.nodes_with_label_slice(b).len(), 2);
        let _ = e2;
    }

    /// Clones share the overlay logs until one side mutates, and the
    /// mutation never leaks back — the contract snapshot publishing
    /// relies on: the writer mutates a clone while readers keep the old
    /// overlay.
    #[test]
    fn clones_are_shallow_and_isolated() {
        let (g, vs, [a, b, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        d.apply(&GraphUpdate {
            new_edges: vec![(vs[0], vs[3], e1)],
            del_edges: vec![(vs[1], vs[2], e1)],
            relabels: vec![(vs[0], b)],
            ..Default::default()
        });
        let mut c = d.clone();
        assert!(
            Arc::ptr_eq(&d.out_delta, &c.out_delta) && Arc::ptr_eq(&d.relabels, &c.relabels),
            "clone shares the logs"
        );
        c.apply(&GraphUpdate {
            new_edges: vec![(vs[2], vs[0], e1)],
            relabels: vec![(vs[0], a)],
            del_nodes: vec![vs[3]],
            ..Default::default()
        });
        // The original overlay is untouched by the clone's mutations.
        assert!(!d.has_edge_view(vs[2], vs[0], e1));
        assert_eq!(GraphView::node_label(&d, vs[0]), b);
        assert!(!d.is_removed(vs[3]));
        assert!(d.has_edge_view(vs[0], vs[3], e1));
        // And the clone sees both generations.
        assert!(c.has_edge_view(vs[2], vs[0], e1));
        assert_eq!(GraphView::node_label(&c, vs[0]), a);
        assert!(c.is_removed(vs[3]));
    }

    #[test]
    fn traversals_see_the_post_deletion_graph() {
        use crate::neighborhood::{ball, d_neighborhood};
        let (g, vs, [_, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        // Base is the path v0 -e1-> v1 -e1-> v2 -e2-> v3. Cut the middle.
        d.apply(&GraphUpdate { del_edges: vec![(vs[1], vs[2], e1)], ..Default::default() });
        assert_eq!(ball(&d, vs[0], 3), vec![vs[0], vs[1]], "distance to v2 grew past the cut");
        let (site, c) = d_neighborhood(&d, vs[0], 2);
        assert_eq!(site.graph.node_count(), 2);
        assert_eq!(site.graph.edge_count(), 1);
        assert_eq!(site.global(c), vs[0]);
        // And the compacted graph agrees.
        let compacted = d.compact().graph;
        assert_eq!(ball(&compacted, vs[0], 3), vec![vs[0], vs[1]]);
    }
}
