//! The delta-graph overlay: a frozen base CSR plus append-only insert
//! logs, read through the same [`GraphView`] surface as the base.
//!
//! Live serving cannot afford a full CSR rebuild per edge insert: the
//! paper's locality property (§4.2) says a radius-`d` evaluation at `v_x`
//! only ever reads `G_d(v_x)`, so an insert touching `(u, v)` can only
//! change answers whose d-ball reaches `u` or `v` — everything else,
//! including its cached extraction, stays valid. [`DeltaGraph`] is the
//! substrate for that: updates append to per-node overlay runs in
//! `O(log)`-probe-compatible `(label, endpoint)` order, reads merge base
//! and overlay lazily, and [`DeltaGraph::compact`] folds the logs back
//! into a fresh CSR (node ids are append-only and never change, so
//! compaction invalidates nothing).
//!
//! Supported mutations are *monotone inserts plus relabels*: new nodes,
//! new edges (possibly to new nodes), node label changes. Deletions are
//! out of scope (see ROADMAP).

use crate::builder::build_label_index;
use crate::graph::{Edge, Graph, NodeId};
use crate::label::{Label, Vocab};
use crate::view::{EdgeView, GraphView};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// One batch of graph mutations, applied atomically by
/// [`DeltaGraph::apply`].
#[derive(Debug, Clone, Default)]
pub struct GraphUpdate {
    /// Labels of nodes to append; ids are assigned densely in order,
    /// starting at the pre-update `node_count()`.
    pub new_nodes: Vec<Label>,
    /// Directed labeled edges to insert. Endpoints may reference nodes
    /// added by this same update. Edges already present are ignored.
    pub new_edges: Vec<(NodeId, NodeId, Label)>,
    /// `(node, new_label)` label changes. No-op relabels are ignored.
    pub relabels: Vec<(NodeId, Label)>,
}

impl GraphUpdate {
    /// Whether the update carries no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.new_nodes.is_empty() && self.new_edges.is_empty() && self.relabels.is_empty()
    }
}

/// What [`DeltaGraph::apply`] actually changed, after deduplication.
#[derive(Debug, Clone, Default)]
pub struct AppliedUpdate {
    /// Ids assigned to `new_nodes`, in input order.
    pub assigned: Vec<NodeId>,
    /// Every node whose incident structure or label changed: endpoints of
    /// effectively-new edges, effectively-relabeled nodes, and new nodes.
    /// Sorted, deduplicated. This is the seed set for d-ball invalidation.
    pub touched: Vec<NodeId>,
    /// Effective (non-duplicate) edge inserts, as applied.
    pub added_edges: Vec<(NodeId, NodeId, Label)>,
    /// Effective relabels as `(node, old_label, new_label)`.
    pub relabeled: Vec<(NodeId, Label, Label)>,
}

/// A base CSR [`Graph`] plus append-only insert logs, readable through
/// [`GraphView`] exactly like the base.
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: Arc<Graph>,
    /// Labels of appended nodes; node `base.node_count() + i` has label
    /// `new_node_labels[i]`.
    new_node_labels: Vec<Label>,
    /// Label overrides for *base* nodes. Invariant: the stored label
    /// always differs from the base label (a relabel back to the original
    /// removes the entry), so `len()` counts real divergences.
    relabels: FxHashMap<NodeId, Label>,
    /// Per-node inserted out-edges, each run sorted by `(label, target)`
    /// and disjoint from the base run.
    out_delta: FxHashMap<NodeId, Vec<Edge>>,
    /// Mirror of `out_delta` keyed by target, sorted by `(label, source)`.
    in_delta: FxHashMap<NodeId, Vec<Edge>>,
    /// Total inserted edges (Σ of `out_delta` run lengths).
    delta_edge_count: usize,
}

impl DeltaGraph {
    /// An overlay with no pending deltas.
    pub fn new(base: Arc<Graph>) -> Self {
        Self {
            base,
            new_node_labels: Vec::new(),
            relabels: FxHashMap::default(),
            out_delta: FxHashMap::default(),
            in_delta: FxHashMap::default(),
            delta_edge_count: 0,
        }
    }

    /// The frozen base CSR.
    pub fn base(&self) -> &Arc<Graph> {
        &self.base
    }

    /// Nodes appended since the base was frozen.
    pub fn delta_node_count(&self) -> usize {
        self.new_node_labels.len()
    }

    /// Edges inserted since the base was frozen.
    pub fn delta_edge_count(&self) -> usize {
        self.delta_edge_count
    }

    /// Base nodes whose label currently diverges from the base CSR.
    pub fn relabel_count(&self) -> usize {
        self.relabels.len()
    }

    /// Whether the overlay carries no deltas (reads are pure base reads).
    pub fn is_clean(&self) -> bool {
        self.new_node_labels.is_empty() && self.relabels.is_empty() && self.delta_edge_count == 0
    }

    /// The first node reference in `update` that would be out of range
    /// against a graph of `node_count` nodes (counting the update's own
    /// node appends), if any. Callers wanting fallible application check
    /// this before [`DeltaGraph::apply`].
    pub fn first_out_of_range(update: &GraphUpdate, node_count: usize) -> Option<NodeId> {
        let n = node_count + update.new_nodes.len();
        update
            .relabels
            .iter()
            .map(|&(v, _)| v)
            .chain(update.new_edges.iter().flat_map(|&(s, d, _)| [s, d]))
            .find(|v| v.index() >= n)
    }

    /// Applies one update batch. Duplicate edges (already in base or
    /// overlay, or repeated within the batch) and no-op relabels are
    /// dropped; the returned [`AppliedUpdate`] reports only *effective*
    /// mutations.
    ///
    /// # Panics
    /// Panics if an edge endpoint or relabel target is out of range
    /// (``>= node_count()`` after this update's node appends). The whole
    /// batch is validated **before** any mutation, so a panicking call
    /// leaves the overlay exactly as it was.
    pub fn apply(&mut self, update: &GraphUpdate) -> AppliedUpdate {
        if let Some(v) = Self::first_out_of_range(update, GraphView::node_count(self)) {
            panic!("update references node {v} out of range");
        }
        let mut applied = AppliedUpdate::default();
        for &l in &update.new_nodes {
            let id = NodeId(GraphView::node_count(self) as u32);
            self.new_node_labels.push(l);
            applied.assigned.push(id);
            applied.touched.push(id);
        }
        let n = GraphView::node_count(self);
        for &(v, new) in &update.relabels {
            debug_assert!(v.index() < n, "validated above");
            let old = GraphView::node_label(self, v);
            if old == new {
                continue;
            }
            if v.index() >= self.base.node_count() {
                self.new_node_labels[v.index() - self.base.node_count()] = new;
            } else if self.base.node_label(v) == new {
                self.relabels.remove(&v);
            } else {
                self.relabels.insert(v, new);
            }
            applied.relabeled.push((v, old, new));
            applied.touched.push(v);
        }
        for &(src, dst, label) in &update.new_edges {
            debug_assert!(src.index() < n && dst.index() < n, "validated above");
            let e = Edge { label, node: dst };
            if GraphView::out_view(self, src).contains(e) {
                continue;
            }
            insert_sorted(self.out_delta.entry(src).or_default(), e);
            insert_sorted(self.in_delta.entry(dst).or_default(), Edge { label, node: src });
            self.delta_edge_count += 1;
            applied.added_edges.push((src, dst, label));
            applied.touched.push(src);
            applied.touched.push(dst);
        }
        applied.touched.sort_unstable();
        applied.touched.dedup();
        applied
    }

    /// Merges all pending deltas into a fresh CSR [`Graph`]. Node ids are
    /// preserved (appends are dense, relabels in place), so anything
    /// keyed by `NodeId` — caches, candidate indexes, catalogs — remains
    /// valid against the compacted graph.
    ///
    /// Per-node adjacency is produced by merging the two already-sorted
    /// runs, so compaction is `O(|V| + |E|)` plus the label-index sort —
    /// no full edge re-sort as in [`crate::GraphBuilder::build`].
    pub fn compact(&self) -> Graph {
        let n = GraphView::node_count(self);
        let mut node_labels = Vec::with_capacity(n);
        for v in 0..n as u32 {
            node_labels.push(GraphView::node_label(self, NodeId(v)));
        }
        let total_edges = self.base.edge_count() + self.delta_edge_count;
        let merge = |view: fn(&Self, NodeId) -> EdgeView<'_>| {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut adj = Vec::with_capacity(total_edges);
            offsets.push(0u32);
            for v in 0..n as u32 {
                adj.extend(view(self, NodeId(v)).merged());
                offsets.push(adj.len() as u32);
            }
            (offsets, adj)
        };
        let (out_offsets, out_adj) = merge(GraphView::out_view);
        let (in_offsets, in_adj) = merge(GraphView::in_view);
        let (label_nodes, label_starts) = build_label_index(&node_labels);
        Graph {
            node_labels,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            label_nodes,
            label_starts,
            vocab: self.base.vocab().clone(),
        }
    }
}

/// Inserts `e` into a `(label, endpoint)`-sorted run, keeping it sorted.
/// Runs are per-node insert logs — short in any realistic update stream —
/// so the `O(len)` shift is irrelevant next to the probe savings of
/// keeping them binary-searchable.
fn insert_sorted(run: &mut Vec<Edge>, e: Edge) {
    match run.binary_search(&e) {
        // Caller guarantees novelty (checked against the full view).
        Ok(_) => debug_assert!(false, "duplicate edge reached insert_sorted"),
        Err(i) => run.insert(i, e),
    }
}

impl GraphView for DeltaGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.base.node_count() + self.new_node_labels.len()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.base.edge_count() + self.delta_edge_count
    }

    #[inline]
    fn vocab(&self) -> &Arc<Vocab> {
        self.base.vocab()
    }

    #[inline]
    fn node_label(&self, v: NodeId) -> Label {
        let nb = self.base.node_count();
        if v.index() >= nb {
            self.new_node_labels[v.index() - nb]
        } else if let Some(&l) = self.relabels.get(&v) {
            l
        } else {
            self.base.node_label(v)
        }
    }

    #[inline]
    fn out_view(&self, v: NodeId) -> EdgeView<'_> {
        EdgeView {
            base: if v.index() < self.base.node_count() { self.base.out_edges(v) } else { &[] },
            delta: self.out_delta.get(&v).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    #[inline]
    fn in_view(&self, v: NodeId) -> EdgeView<'_> {
        EdgeView {
            base: if v.index() < self.base.node_count() { self.base.in_edges(v) } else { &[] },
            delta: self.in_delta.get(&v).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    fn label_members(&self, label: Label) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .base
            .nodes_with_label_slice(label)
            .iter()
            .copied()
            .filter(|v| !self.relabels.contains_key(v))
            .collect();
        out.extend(self.relabels.iter().filter(|&(_, &l)| l == label).map(|(&v, _)| v));
        let nb = self.base.node_count() as u32;
        out.extend(
            self.new_node_labels
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l == label)
                .map(|(i, _)| NodeId(nb + i as u32)),
        );
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::label::Vocab;

    fn base() -> (Arc<Graph>, Vec<NodeId>, [Label; 4]) {
        let vocab = Vocab::new();
        let a = vocab.intern("a");
        let b = vocab.intern("b");
        let e1 = vocab.intern("e1");
        let e2 = vocab.intern("e2");
        let mut gb = GraphBuilder::new(vocab);
        let vs: Vec<NodeId> = (0..4).map(|i| gb.add_node(if i % 2 == 0 { a } else { b })).collect();
        gb.add_edge(vs[0], vs[1], e1);
        gb.add_edge(vs[1], vs[2], e1);
        gb.add_edge(vs[2], vs[3], e2);
        (Arc::new(gb.build()), vs, [a, b, e1, e2])
    }

    #[test]
    fn clean_overlay_reads_like_the_base() {
        let (g, vs, [a, _, e1, _]) = base();
        let d = DeltaGraph::new(g.clone());
        assert!(d.is_clean());
        assert_eq!(GraphView::node_count(&d), g.node_count());
        assert_eq!(GraphView::edge_count(&d), g.edge_count());
        assert_eq!(GraphView::node_label(&d, vs[0]), a);
        assert!(d.has_edge_view(vs[0], vs[1], e1));
        assert!(!d.has_edge_view(vs[1], vs[0], e1));
        assert_eq!(d.label_members(a), vec![vs[0], vs[2]]);
    }

    #[test]
    fn apply_inserts_nodes_edges_and_relabels() {
        let (g, vs, [a, b, e1, e2]) = base();
        let mut d = DeltaGraph::new(g);
        let applied = d.apply(&GraphUpdate {
            new_nodes: vec![a],
            new_edges: vec![(vs[3], NodeId(4), e1), (vs[0], vs[2], e2)],
            relabels: vec![(vs[1], a)],
        });
        assert_eq!(applied.assigned, vec![NodeId(4)]);
        assert_eq!(applied.added_edges.len(), 2);
        assert_eq!(applied.relabeled, vec![(vs[1], b, a)]);
        assert_eq!(applied.touched, vec![vs[0], vs[1], vs[2], vs[3], NodeId(4)]);
        assert_eq!(GraphView::node_count(&d), 5);
        assert!(d.has_edge_view(vs[3], NodeId(4), e1));
        assert!(d.has_edge_view(vs[0], vs[2], e2));
        assert_eq!(GraphView::node_label(&d, vs[1]), a);
        assert_eq!(d.label_members(a), vec![vs[0], vs[1], vs[2], NodeId(4)]);
        assert_eq!(d.label_members(b), vec![vs[3]]);
        // In-view mirrors the insert.
        assert!(d.in_view(NodeId(4)).contains(Edge { label: e1, node: vs[3] }));
    }

    #[test]
    fn duplicates_and_noop_relabels_are_dropped() {
        let (g, vs, [a, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        let applied = d.apply(&GraphUpdate {
            new_nodes: vec![],
            // Already in base; repeated in batch; genuinely new.
            new_edges: vec![(vs[0], vs[1], e1), (vs[0], vs[3], e1), (vs[0], vs[3], e1)],
            relabels: vec![(vs[0], a)], // no-op: already labeled a
        });
        assert_eq!(applied.added_edges, vec![(vs[0], vs[3], e1)]);
        assert!(applied.relabeled.is_empty());
        assert_eq!(applied.touched, vec![vs[0], vs[3]]);
        // Re-applying the same batch is now a full no-op.
        let again =
            d.apply(&GraphUpdate { new_edges: vec![(vs[0], vs[3], e1)], ..Default::default() });
        assert!(again.added_edges.is_empty());
        assert!(again.touched.is_empty());
    }

    #[test]
    fn relabel_back_to_base_label_clears_the_override() {
        let (g, vs, [a, b, _, _]) = base();
        let mut d = DeltaGraph::new(g);
        d.apply(&GraphUpdate { relabels: vec![(vs[0], b)], ..Default::default() });
        assert_eq!(d.relabel_count(), 1);
        let back = d.apply(&GraphUpdate { relabels: vec![(vs[0], a)], ..Default::default() });
        assert_eq!(d.relabel_count(), 0);
        assert!(d.is_clean());
        assert_eq!(back.relabeled, vec![(vs[0], b, a)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics_without_mutating() {
        let (g, vs, [_, _, e1, _]) = base();
        let mut d = DeltaGraph::new(g);
        d.apply(&GraphUpdate { new_edges: vec![(vs[0], NodeId(99), e1)], ..Default::default() });
    }

    #[test]
    fn compact_equals_builder_materialization() {
        let (g, vs, [a, b, e1, e2]) = base();
        let mut d = DeltaGraph::new(g.clone());
        d.apply(&GraphUpdate {
            new_nodes: vec![b, a],
            new_edges: vec![
                (NodeId(4), vs[0], e2),
                (vs[0], NodeId(5), e1),
                (vs[0], vs[3], e1),
                (NodeId(4), NodeId(5), e1),
            ],
            relabels: vec![(vs[2], b)],
        });
        let compacted = d.compact();

        // Independent materialization through the builder.
        let mut gb = GraphBuilder::new(g.vocab().clone());
        for v in 0..GraphView::node_count(&d) as u32 {
            gb.add_node(GraphView::node_label(&d, NodeId(v)));
        }
        for v in 0..g.node_count() as u32 {
            for e in g.out_edges(NodeId(v)) {
                gb.add_edge(NodeId(v), e.node, e.label);
            }
        }
        gb.add_edge(NodeId(4), vs[0], e2);
        gb.add_edge(vs[0], NodeId(5), e1);
        gb.add_edge(vs[0], vs[3], e1);
        gb.add_edge(NodeId(4), NodeId(5), e1);
        let expect = gb.build();

        assert_eq!(compacted.node_count(), expect.node_count());
        assert_eq!(compacted.edge_count(), expect.edge_count());
        for v in 0..expect.node_count() as u32 {
            let v = NodeId(v);
            assert_eq!(compacted.node_label(v), expect.node_label(v));
            assert_eq!(compacted.out_edges(v), expect.out_edges(v), "{v}");
            assert_eq!(compacted.in_edges(v), expect.in_edges(v), "{v}");
            let l = expect.node_label(v);
            assert_eq!(compacted.nodes_with_label_slice(l), expect.nodes_with_label_slice(l));
        }
        // Compacting a clean overlay round-trips.
        let clean = DeltaGraph::new(Arc::new(compacted));
        let again = clean.compact();
        assert_eq!(again.node_count(), expect.node_count());
        assert_eq!(again.edge_count(), expect.edge_count());
    }
}
