//! Mutable graph construction.

use crate::graph::{Edge, Graph, NodeId};
use crate::label::{Label, Vocab};
use std::sync::Arc;

/// Builds a [`Graph`] incrementally, then freezes it into CSR form.
///
/// ```
/// use gpar_graph::{GraphBuilder, Vocab};
/// let vocab = Vocab::new();
/// let mut b = GraphBuilder::new(vocab.clone());
/// let cust = vocab.intern("cust");
/// let shop = vocab.intern("shop");
/// let visit = vocab.intern("visit");
/// let x = b.add_node(cust);
/// let y = b.add_node(shop);
/// b.add_edge(x, y, visit);
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// assert!(g.has_edge(x, y, visit));
/// ```
pub struct GraphBuilder {
    vocab: Arc<Vocab>,
    node_labels: Vec<Label>,
    edges: Vec<(NodeId, NodeId, Label)>,
}

impl GraphBuilder {
    /// Creates a builder over a shared vocabulary.
    pub fn new(vocab: Arc<Vocab>) -> Self {
        Self { vocab, node_labels: Vec::new(), edges: Vec::new() }
    }

    /// Creates a builder with a fresh private vocabulary.
    pub fn with_fresh_vocab() -> Self {
        Self::new(Vocab::new())
    }

    /// The vocabulary this builder interns into.
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// Pre-allocates for `nodes` nodes and `edges` edges.
    pub fn reserve(&mut self, nodes: usize, edges: usize) {
        self.node_labels.reserve(nodes);
        self.edges.reserve(edges);
    }

    /// Adds a node with the given label, returning its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = NodeId(self.node_labels.len() as u32);
        self.node_labels.push(label);
        id
    }

    /// Convenience: interns `label` and adds a node.
    pub fn add_node_str(&mut self, label: &str) -> NodeId {
        let l = self.vocab.intern(label);
        self.add_node(l)
    }

    /// Adds a directed labeled edge. Duplicate `(src, dst, label)` triples
    /// are deduplicated at [`GraphBuilder::build`] time.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: Label) {
        assert!(
            src.index() < self.node_labels.len() && dst.index() < self.node_labels.len(),
            "edge endpoint out of range"
        );
        self.edges.push((src, dst, label));
    }

    /// Convenience: interns `label` and adds an edge.
    pub fn add_edge_str(&mut self, src: NodeId, dst: NodeId, label: &str) {
        let l = self.vocab.intern(label);
        self.add_edge(src, dst, label_of(l));
    }

    /// Current number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Current number of (pre-dedup) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.node_labels.len();
        let mut edges = self.edges;
        // Sort by (src, label, dst) so per-node out slices come out ordered
        // by (label, target); dedup removes parallel identical edges.
        edges.sort_unstable_by_key(|&(s, d, l)| (s, l, d));
        edges.dedup();

        let mut out_offsets = vec![0u32; n + 1];
        for &(s, _, _) in &edges {
            out_offsets[s.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_adj = Vec::with_capacity(edges.len());
        for &(_, d, l) in &edges {
            out_adj.push(Edge { label: l, node: d });
        }

        // In-adjacency: re-sort by (dst, label, src).
        let mut in_sorted = edges;
        in_sorted.sort_unstable_by_key(|&(s, d, l)| (d, l, s));
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, d, _) in &in_sorted {
            in_offsets[d.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_adj = Vec::with_capacity(in_sorted.len());
        for &(s, _, l) in &in_sorted {
            in_adj.push(Edge { label: l, node: s });
        }

        let (label_nodes, label_starts) = build_label_index(&self.node_labels);

        Graph {
            node_labels: self.node_labels,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            label_nodes,
            label_starts,
            vocab: self.vocab,
        }
    }
}

#[inline]
fn label_of(l: Label) -> Label {
    l
}

/// Builds the label-partitioned node index for a label array: ids grouped
/// by label (stable sort keeps each run in id order) plus the run-start
/// table, closed by a terminal sentinel (never matched: real labels are
/// dense interner ids well below `u32::MAX`). Shared by the builder and
/// the direct-CSR extraction fast path.
pub(crate) fn build_label_index(node_labels: &[Label]) -> (Vec<NodeId>, Vec<(Label, u32)>) {
    let n = node_labels.len();
    let mut label_nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    label_nodes.sort_by_key(|v| node_labels[v.index()]);
    let mut label_starts: Vec<(Label, u32)> = Vec::new();
    for (i, &v) in label_nodes.iter().enumerate() {
        let l = node_labels[v.index()];
        if label_starts.last().map(|&(pl, _)| pl) != Some(l) {
            label_starts.push((l, i as u32));
        }
    }
    label_starts.push((Label(u32::MAX), n as u32));
    (label_nodes, label_starts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::with_fresh_vocab().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.size(), 0);
    }

    #[test]
    fn nodes_without_edges_have_empty_adjacency() {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let l = vocab.intern("n");
        let v = b.add_node(l);
        let g = b.build();
        assert!(g.out_edges(v).is_empty());
        assert!(g.in_edges(v).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_to_unknown_node_panics() {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let l = vocab.intern("n");
        let v = b.add_node(l);
        b.add_edge(v, NodeId(7), l);
    }

    #[test]
    fn build_size_matches_paper_definition() {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let l = vocab.intern("n");
        let e = vocab.intern("e");
        let a = b.add_node(l);
        let c = b.add_node(l);
        b.add_edge(a, c, e);
        let g = b.build();
        assert_eq!(g.size(), 3); // |V| + |E|
    }
}
