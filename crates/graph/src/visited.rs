//! Epoch-versioned dense marks over `u32` node ids.
//!
//! BFS, ball extraction and the matcher's injectivity check all need a
//! "visited?" predicate over dense node ids. Hashing (`FxHashSet`) pays a
//! hash + probe per query and an allocation per traversal; a plain
//! `Vec<bool>` pays an `O(|V|)` clear per traversal. The epoch trick pays
//! neither: a mark is "set" iff its stored stamp equals the buffer's
//! current epoch, so resetting is one increment and queries are one
//! indexed load. Buffers are meant to live in reusable scratch state
//! (see [`crate::neighborhood::NeighborhoodScratch`]) and be `reset` at
//! the top of every traversal.

use crate::graph::NodeId;

/// A reusable visited-set over dense `u32` ids with `O(1)` reset.
#[derive(Debug, Clone, Default)]
pub struct VisitedBuffer {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitedBuffer {
    /// Creates an empty buffer (grows on first [`VisitedBuffer::reset`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a fresh traversal over a domain of `n` ids: grows the
    /// backing store if needed and invalidates all previous marks.
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap: stale stamps could alias the restarted
                // counter, so clear once per 2^32 traversals.
                self.stamps.fill(0);
                1
            }
        };
    }

    /// Marks `v`; returns `true` iff it was not yet marked this epoch.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let slot = &mut self.stamps[v.index()];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `v` is marked in the current epoch.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.stamps[v.index()] == self.epoch
    }

    /// Unmarks `v` (used by backtracking searches to release a node).
    #[inline]
    pub fn remove(&mut self, v: NodeId) {
        self.stamps[v.index()] = 0;
    }
}

/// A reusable dense `NodeId → u32` map with `O(1)` reset, for the
/// global→local id translation of induced-subgraph extraction.
#[derive(Debug, Clone, Default)]
pub struct EpochMap {
    stamps: Vec<u32>,
    values: Vec<u32>,
    epoch: u32,
}

impl EpochMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a fresh mapping over a domain of `n` keys.
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
            self.values.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    /// Inserts `k ↦ v` if `k` is unmapped this epoch; returns `true` on
    /// first insertion (the value is *not* overwritten on repeats,
    /// matching first-occurrence extraction semantics).
    #[inline]
    pub fn insert_new(&mut self, k: NodeId, v: u32) -> bool {
        let i = k.index();
        if self.stamps[i] == self.epoch {
            false
        } else {
            self.stamps[i] = self.epoch;
            self.values[i] = v;
            true
        }
    }

    /// The value mapped to `k` this epoch, if any.
    #[inline]
    pub fn get(&self, k: NodeId) -> Option<u32> {
        let i = k.index();
        (self.stamps[i] == self.epoch).then(|| self.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visited_marks_and_resets() {
        let mut vb = VisitedBuffer::new();
        vb.reset(4);
        assert!(vb.insert(NodeId(2)));
        assert!(!vb.insert(NodeId(2)));
        assert!(vb.contains(NodeId(2)));
        assert!(!vb.contains(NodeId(1)));
        vb.reset(4);
        assert!(!vb.contains(NodeId(2)), "reset must invalidate marks");
        assert!(vb.insert(NodeId(2)));
        vb.remove(NodeId(2));
        assert!(!vb.contains(NodeId(2)));
        assert!(vb.insert(NodeId(2)), "removed nodes can be re-marked");
    }

    #[test]
    fn visited_grows_domain() {
        let mut vb = VisitedBuffer::new();
        vb.reset(2);
        vb.insert(NodeId(1));
        vb.reset(10);
        assert!(vb.insert(NodeId(9)));
        assert!(!vb.contains(NodeId(1)));
    }

    #[test]
    fn epoch_map_first_occurrence_wins() {
        let mut m = EpochMap::new();
        m.reset(5);
        assert!(m.insert_new(NodeId(3), 0));
        assert!(!m.insert_new(NodeId(3), 7), "repeat insert is a no-op");
        assert_eq!(m.get(NodeId(3)), Some(0));
        assert_eq!(m.get(NodeId(4)), None);
        m.reset(5);
        assert_eq!(m.get(NodeId(3)), None);
    }
}
