//! # gpar-graph
//!
//! Labeled directed multigraph substrate for graph-pattern association rules
//! (GPARs), reproducing the data model of *Fan et al., "Association Rules
//! with Graph Patterns", PVLDB 2015* (§2.1):
//!
//! > A graph is `G = (V, E, L)` where `V` is a finite set of nodes,
//! > `E ⊆ V × V` a set of edges, and every node and edge carries a label
//! > `L(·)` (its label or content, e.g. `cust`, `French restaurant`, `"44"`).
//!
//! The crate provides:
//!
//! * [`Vocab`] — a thread-safe string interner mapping label strings to
//!   compact [`Label`] symbols shared across graphs, patterns and fragments;
//! * [`Graph`] — an immutable CSR-packed graph with out- *and* in-adjacency,
//!   both sorted by `(label, endpoint)` for `O(log deg)` labeled lookups;
//! * [`GraphBuilder`] — the mutable construction API;
//! * [`DeltaGraph`] — a base CSR plus append-only mutation logs (new nodes,
//!   new edges, relabels, edge tombstones, node removals) read through the
//!   shared [`GraphView`] trait, with [`DeltaGraph::compact`] merging
//!   deltas back into CSR form (returning a [`NodeRemap`] when removals
//!   re-densified the id space) — the substrate for incremental serving;
//! * [`neighborhood`] — BFS utilities, `N_r(v)` balls and `G_d(v_x)`
//!   d-neighborhood extraction (the locality primitive both DMine and Match
//!   capitalize on);
//! * [`sketch`] — k-hop label-frequency sketches used by the guided-search
//!   optimization of §5.2;
//! * [`io`] — a small line-oriented text format for graphs.
//!
//! All node and label identifiers are `u32` newtypes: the paper's target
//! graphs (tens of millions of nodes) fit comfortably, and halving index
//! width keeps the CSR arrays cache-resident.

pub mod builder;
pub mod coalesce;
pub mod delta;
pub mod graph;
pub mod io;
pub mod label;
pub mod neighborhood;
pub mod sketch;
pub mod view;
pub mod visited;

pub use builder::GraphBuilder;
pub use coalesce::{CoalesceSummary, Coalescer};
pub use delta::{
    check_id_capacity, AppliedUpdate, CompactedGraph, DeltaGraph, GraphUpdate, NodeRemap,
    UpdateInvalid, MAX_NODE_SLOTS,
};
pub use graph::{Edge, Graph, NodeId};
pub use label::{Label, Vocab};
pub use neighborhood::{
    ball, ball_with, bfs_layers, bfs_layers_with, d_neighborhood, d_neighborhood_with,
    extract_induced, extract_induced_with, multi_source_distances, Extracted, NeighborhoodScratch,
};
pub use sketch::{Sketch, SketchIndex};
pub use view::{EdgeView, GraphView, MergedEdges};
pub use visited::{EpochMap, VisitedBuffer};

/// Fast hash map keyed by small integers (FxHash; see the performance notes
/// in DESIGN.md §7).
pub type FxHashMap<K, V> = rustc_hash::FxHashMap<K, V>;
/// Fast hash set for small integer keys.
pub type FxHashSet<K> = rustc_hash::FxHashSet<K>;

/// Per-thread CPU time (`CLOCK_THREAD_CPUTIME_ID`).
///
/// Worker busy times must be CPU time, not wall time: on an oversubscribed
/// host every thread's wall time approaches the total elapsed time, which
/// would make critical-path simulation of an n-processor cluster (see
/// DESIGN.md "Substitutions") meaningless.
pub fn thread_cpu_time() -> std::time::Duration {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: clock_gettime writes into the provided timespec.
    unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    std::time::Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
}
