//! BFS neighborhoods and induced-subgraph extraction.
//!
//! These are the locality primitives behind both algorithms in the paper:
//! for any GPAR `R` of radius ≤ `d` at `x` and any node `v_x`,
//! `v_x ∈ P_R(x, G)` iff `v_x ∈ P_R(x, G_d(v_x))` where `G_d(v_x)` is the
//! subgraph *induced* by `N_d(v_x)` (§4.2 "data locality of subgraph
//! isomorphism"). Fragmentation (crate `gpar-partition`) builds on
//! [`ball`] + [`extract_induced`].
//!
//! Every traversal here sits on the per-candidate hot path (one ball +
//! extraction per candidate center, for every mining round / EIP run /
//! serve request), so each primitive has a `_with` variant taking a
//! reusable [`NeighborhoodScratch`]: visited marks are epoch-stamped
//! ([`VisitedBuffer`]) instead of hashed, the BFS frontier is the output
//! layer vector itself, and global→local translation during extraction is
//! a dense [`EpochMap`]. The scratch-free wrappers allocate a fresh
//! scratch per call and remain the convenient choice off the hot path.

use crate::graph::{Graph, NodeId};
use crate::view::GraphView;
use crate::visited::{EpochMap, VisitedBuffer};
use crate::GraphBuilder;

/// Reusable state for [`bfs_layers_with`], [`ball_with`],
/// [`extract_induced_with`] and [`crate::Sketch::build_with`]. Create one
/// per worker/thread and reuse it across traversals; buffers grow to the
/// largest graph seen and are never shrunk.
#[derive(Debug, Clone, Default)]
pub struct NeighborhoodScratch {
    /// Visited marks for BFS.
    pub(crate) visited: VisitedBuffer,
    /// `(node, depth)` in visit order; doubles as the BFS queue.
    pub(crate) layers: Vec<(NodeId, u32)>,
    /// Sorted ball node ids.
    pub(crate) nodes: Vec<NodeId>,
    /// Global → local id translation during extraction.
    pub(crate) local_of: EpochMap,
    /// Per-hop label buffers for sketch construction.
    pub(crate) labels: Vec<Vec<crate::Label>>,
    /// BFS traversals run through this scratch since the last
    /// [`NeighborhoodScratch::take_counters`] (plain `u64`s: the scratch
    /// is per-thread; the serving engine drains them into its sharded
    /// metrics registry per job).
    traversals: u64,
    /// Nodes visited across those traversals.
    nodes_visited: u64,
}

impl NeighborhoodScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `(node, depth)` layers of the most recent BFS run through this
    /// scratch ([`bfs_layers_with`], [`ball_with`], [`d_neighborhood_with`]
    /// all leave them in place), letting callers read depth information
    /// without a second traversal.
    pub fn last_layers(&self) -> &[(NodeId, u32)] {
        &self.layers
    }

    /// Takes and zeroes the traversal counters:
    /// `(traversals run, nodes visited)`.
    pub fn take_counters(&mut self) -> (u64, u64) {
        let out = (self.traversals, self.nodes_visited);
        self.traversals = 0;
        self.nodes_visited = 0;
        out
    }
}

/// The shared bounded-BFS core over the *undirected* view of `g`: fills
/// `scratch.layers` with `(node, depth)` in visit order and, when a
/// `target` is given, stops and reports its distance the moment an edge
/// touches it (the first touch is the shortest distance).
fn bfs_bounded<G: GraphView + ?Sized>(
    g: &G,
    start: NodeId,
    max_depth: u32,
    scratch: &mut NeighborhoodScratch,
    target: Option<NodeId>,
) -> Option<u32> {
    let seen = &mut scratch.visited;
    let order = &mut scratch.layers;
    seen.reset(g.node_count());
    order.clear();
    seen.insert(start);
    order.push((start, 0));
    // The output vector doubles as the queue: BFS visit order is already
    // the FIFO order, so a read cursor replaces the `VecDeque`.
    let mut head = 0;
    while head < order.len() {
        let (v, depth) = order[head];
        head += 1;
        if depth == max_depth {
            continue;
        }
        for e in g.out_view(v).iter().chain(g.in_view(v).iter()) {
            if target == Some(e.node) {
                scratch.traversals += 1;
                scratch.nodes_visited += head as u64;
                return Some(depth + 1);
            }
            if seen.insert(e.node) {
                order.push((e.node, depth + 1));
            }
        }
    }
    scratch.traversals += 1;
    scratch.nodes_visited += scratch.layers.len() as u64;
    None
}

/// BFS over the *undirected* view of `g` from `start`, up to `max_depth`
/// hops, into `scratch.layers` (returned as a slice). `start` is included
/// at depth 0; nodes appear in visit order. Allocation-free once the
/// scratch has grown to the graph's size.
pub fn bfs_layers_with<'s, G: GraphView + ?Sized>(
    g: &G,
    start: NodeId,
    max_depth: u32,
    scratch: &'s mut NeighborhoodScratch,
) -> &'s [(NodeId, u32)] {
    bfs_bounded(g, start, max_depth, scratch, None);
    &scratch.layers
}

/// BFS over the *undirected* view of `g` from `start`, up to `max_depth`
/// hops. Returns `(node, depth)` pairs in visit order; `start` is included
/// at depth 0. Convenience wrapper over [`bfs_layers_with`].
pub fn bfs_layers<G: GraphView + ?Sized>(
    g: &G,
    start: NodeId,
    max_depth: u32,
) -> Vec<(NodeId, u32)> {
    let mut scratch = NeighborhoodScratch::new();
    bfs_layers_with(g, start, max_depth, &mut scratch).to_vec()
}

/// The ball `N_r(v)` into `scratch.nodes`: all nodes within undirected
/// radius `r` of `v` (including `v`), sorted by node id.
pub fn ball_with<'s, G: GraphView + ?Sized>(
    g: &G,
    v: NodeId,
    r: u32,
    scratch: &'s mut NeighborhoodScratch,
) -> &'s [NodeId] {
    bfs_layers_with(g, v, r, scratch);
    scratch.nodes.clear();
    scratch.nodes.extend(scratch.layers.iter().map(|&(n, _)| n));
    scratch.nodes.sort_unstable();
    &scratch.nodes
}

/// The ball `N_r(v)`: all nodes within undirected radius `r` of `v`
/// (including `v`), sorted by node id.
pub fn ball<G: GraphView + ?Sized>(g: &G, v: NodeId, r: u32) -> Vec<NodeId> {
    let mut scratch = NeighborhoodScratch::new();
    ball_with(g, v, r, &mut scratch).to_vec()
}

/// Undirected distance between two nodes, if connected within `max_depth`.
/// Terminates as soon as `b` is reached instead of exhausting the bounded
/// BFS.
pub fn undirected_distance<G: GraphView + ?Sized>(
    g: &G,
    a: NodeId,
    b: NodeId,
    max_depth: u32,
) -> Option<u32> {
    if a == b {
        return Some(0);
    }
    bfs_bounded(g, a, max_depth, &mut NeighborhoodScratch::new(), Some(b))
}

/// Shortest undirected distances from *any* of `seeds` to every node
/// within `max_depth` hops, as one multi-source BFS (all seeds start at
/// depth 0). This is the serving layer's invalidation primitive: a graph
/// update touching nodes `T` can only change the d-ball of centers within
/// distance `d` of `T`, and this map names exactly those centers.
pub fn multi_source_distances<G: GraphView + ?Sized>(
    g: &G,
    seeds: &[NodeId],
    max_depth: u32,
) -> crate::FxHashMap<NodeId, u32> {
    let mut scratch = NeighborhoodScratch::new();
    let seen = &mut scratch.visited;
    let order = &mut scratch.layers;
    seen.reset(g.node_count());
    for &s in seeds {
        if seen.insert(s) {
            order.push((s, 0));
        }
    }
    let mut head = 0;
    while head < order.len() {
        let (v, depth) = order[head];
        head += 1;
        if depth == max_depth {
            continue;
        }
        for e in g.out_view(v).iter().chain(g.in_view(v).iter()) {
            if seen.insert(e.node) {
                order.push((e.node, depth + 1));
            }
        }
    }
    order.iter().copied().collect()
}

/// A subgraph extracted from a parent graph, with the mapping back to
/// parent ("global") node ids.
#[derive(Debug, Clone)]
pub struct Extracted {
    /// The induced subgraph, with local dense node ids.
    pub graph: Graph,
    /// `to_global[local.index()]` is the parent-graph id of a local node.
    pub to_global: Vec<NodeId>,
    /// Reverse map from parent-graph id to local id, sorted by global id
    /// for binary search (see [`Extracted::local`]).
    pub to_local: Vec<(NodeId, NodeId)>,
}

impl Extracted {
    /// Translates a local node id back to the parent graph.
    #[inline]
    pub fn global(&self, local: NodeId) -> NodeId {
        self.to_global[local.index()]
    }

    /// Translates a parent-graph node id into this subgraph, if present.
    #[inline]
    pub fn local(&self, global: NodeId) -> Option<NodeId> {
        self.to_local.binary_search_by_key(&global, |&(g, _)| g).ok().map(|i| self.to_local[i].1)
    }
}

/// Extracts the subgraph of `g` *induced* by `nodes` (§2.1: all edges of `g`
/// whose endpoints are both in the set), preserving labels and sharing the
/// vocabulary. Reuses `scratch` for the global→local translation so the
/// per-node cost is an indexed load, not a hash probe.
///
/// `nodes` may be unsorted and may contain duplicates; local ids are
/// assigned in first-occurrence order.
pub fn extract_induced_with<G: GraphView + ?Sized>(
    g: &G,
    nodes: &[NodeId],
    scratch: &mut NeighborhoodScratch,
) -> Extracted {
    let local_of = &mut scratch.local_of;
    local_of.reset(g.node_count());
    let mut to_global = Vec::with_capacity(nodes.len());
    for &v in nodes {
        if local_of.insert_new(v, to_global.len() as u32) {
            to_global.push(v);
        }
    }
    // Fast path: when the (deduplicated) node list is id-ordered — which
    // every ball/d-neighborhood extraction guarantees — local id order
    // equals global id order, so the parent's `(label, endpoint)`-sorted
    // adjacency runs stay sorted after translation and the CSR can be
    // emitted directly, skipping the builder's two full edge sorts.
    let graph = if to_global.is_sorted() {
        let n = to_global.len();
        let mut node_labels = Vec::with_capacity(n);
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_adj: Vec<crate::Edge> = Vec::new();
        out_offsets.push(0u32);
        for &gv in &to_global {
            node_labels.push(g.node_label(gv));
            // `merged()` yields the (label, endpoint)-sorted union of the
            // CSR run and any overlay run, so the emitted local runs stay
            // sorted even when extracting from a `DeltaGraph`.
            for e in g.out_view(gv).merged() {
                if let Some(dst) = local_of.get(e.node) {
                    out_adj.push(crate::Edge { label: e.label, node: NodeId(dst) });
                }
            }
            out_offsets.push(out_adj.len() as u32);
        }
        // In-adjacency by counting sort over destinations; each per-node
        // slice then needs only a local re-sort from (src, label) to
        // (label, src) order.
        let mut in_offsets = vec![0u32; n + 1];
        for e in &out_adj {
            in_offsets[e.node.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut in_adj =
            vec![crate::Edge { label: crate::Label(0), node: NodeId(0) }; out_adj.len()];
        for li in 0..n {
            for e in &out_adj[out_offsets[li] as usize..out_offsets[li + 1] as usize] {
                let c = &mut cursor[e.node.index()];
                in_adj[*c as usize] = crate::Edge { label: e.label, node: NodeId(li as u32) };
                *c += 1;
            }
        }
        for li in 0..n {
            in_adj[in_offsets[li] as usize..in_offsets[li + 1] as usize].sort_unstable();
        }
        let (label_nodes, label_starts) = crate::builder::build_label_index(&node_labels);
        Graph {
            node_labels,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            label_nodes,
            label_starts,
            vocab: g.vocab().clone(),
        }
    } else {
        let mut b = GraphBuilder::new(g.vocab().clone());
        for &gv in &to_global {
            b.add_node(g.node_label(gv));
        }
        for (li, &gv) in to_global.iter().enumerate() {
            for e in g.out_view(gv).iter() {
                if let Some(dst) = local_of.get(e.node) {
                    b.add_edge(NodeId(li as u32), NodeId(dst), e.label);
                }
            }
        }
        b.build()
    };
    let mut to_local: Vec<(NodeId, NodeId)> =
        to_global.iter().enumerate().map(|(li, &gv)| (gv, NodeId(li as u32))).collect();
    to_local.sort_unstable_by_key(|&(gv, _)| gv);
    Extracted { graph, to_global, to_local }
}

/// Extracts the subgraph of `g` *induced* by `nodes` with a fresh scratch.
pub fn extract_induced<G: GraphView + ?Sized>(g: &G, nodes: &[NodeId]) -> Extracted {
    extract_induced_with(g, nodes, &mut NeighborhoodScratch::new())
}

/// Extracts `G_d(v_x)`: the subgraph induced by `N_d(v_x)`, together with
/// the local id of the center, reusing `scratch` across calls.
pub fn d_neighborhood_with<G: GraphView + ?Sized>(
    g: &G,
    center: NodeId,
    d: u32,
    scratch: &mut NeighborhoodScratch,
) -> (Extracted, NodeId) {
    ball_with(g, center, d, scratch);
    // Move the ball out of the scratch so extraction can reuse it too.
    let nodes = std::mem::take(&mut scratch.nodes);
    let ex = extract_induced_with(g, &nodes, scratch);
    scratch.nodes = nodes;
    let c = ex.local(center).expect("center is in its own ball");
    (ex, c)
}

/// Extracts `G_d(v_x)`: the subgraph induced by `N_d(v_x)`, together with
/// the local id of the center.
pub fn d_neighborhood<G: GraphView + ?Sized>(g: &G, center: NodeId, d: u32) -> (Extracted, NodeId) {
    d_neighborhood_with(g, center, d, &mut NeighborhoodScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Vocab;

    /// A directed path v0 -> v1 -> v2 -> v3 with one label.
    fn path4() -> (Graph, Vec<NodeId>) {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let vs: Vec<NodeId> = (0..4).map(|_| b.add_node(n)).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], e);
        }
        (b.build(), vs)
    }

    #[test]
    fn bfs_is_undirected_and_depth_bounded() {
        let (g, vs) = path4();
        // From the *end* of the path, in-edges must be traversed too.
        let l1 = bfs_layers(&g, vs[3], 1);
        assert_eq!(l1.len(), 2);
        assert!(l1.contains(&(vs[2], 1)));
        let l3 = bfs_layers(&g, vs[3], 3);
        assert_eq!(l3.len(), 4);
        assert!(l3.contains(&(vs[0], 3)));
    }

    #[test]
    fn scratch_reuse_matches_fresh_traversals() {
        let (g, vs) = path4();
        let mut scratch = NeighborhoodScratch::new();
        for &v in &vs {
            for r in 0..3 {
                let fresh = bfs_layers(&g, v, r);
                assert_eq!(bfs_layers_with(&g, v, r, &mut scratch), &fresh[..]);
                let fresh_ball = ball(&g, v, r);
                assert_eq!(ball_with(&g, v, r, &mut scratch), &fresh_ball[..]);
            }
        }
    }

    #[test]
    fn traversal_counters_drain() {
        let (g, vs) = path4();
        let mut scratch = NeighborhoodScratch::new();
        bfs_layers_with(&g, vs[0], 3, &mut scratch);
        ball_with(&g, vs[1], 1, &mut scratch);
        let (traversals, visited) = scratch.take_counters();
        assert_eq!(traversals, 2);
        assert_eq!(visited, 4 + 3, "full path then the radius-1 ball of v1");
        assert_eq!(scratch.take_counters(), (0, 0), "taking zeroes");
    }

    #[test]
    fn ball_includes_center_and_is_sorted() {
        let (g, vs) = path4();
        let b = ball(&g, vs[1], 1);
        assert_eq!(b, vec![vs[0], vs[1], vs[2]]);
    }

    #[test]
    fn undirected_distance_matches_path_lengths() {
        let (g, vs) = path4();
        assert_eq!(undirected_distance(&g, vs[0], vs[3], 5), Some(3));
        assert_eq!(undirected_distance(&g, vs[0], vs[3], 2), None);
        assert_eq!(undirected_distance(&g, vs[2], vs[2], 0), Some(0));
        // Early termination must still return the *shortest* distance.
        assert_eq!(undirected_distance(&g, vs[0], vs[1], 5), Some(1));
        assert_eq!(undirected_distance(&g, vs[3], vs[0], 3), Some(3));
    }

    #[test]
    fn induced_extraction_keeps_internal_edges_only() {
        let (g, vs) = path4();
        let ex = extract_induced(&g, &[vs[0], vs[1], vs[3]]);
        assert_eq!(ex.graph.node_count(), 3);
        // Only v0->v1 survives; v1->v2 and v2->v3 have an endpoint outside.
        assert_eq!(ex.graph.edge_count(), 1);
        let l0 = ex.local(vs[0]).unwrap();
        let l1 = ex.local(vs[1]).unwrap();
        let e = g.vocab().get("e").unwrap();
        assert!(ex.graph.has_edge(l0, l1, e));
        assert_eq!(ex.global(l0), vs[0]);
        assert_eq!(ex.local(vs[2]), None);
    }

    #[test]
    fn d_neighborhood_is_the_induced_ball() {
        let (g, vs) = path4();
        let (ex, c) = d_neighborhood(&g, vs[1], 1);
        assert_eq!(ex.graph.node_count(), 3);
        assert_eq!(ex.graph.edge_count(), 2); // v0->v1, v1->v2 are internal
        assert_eq!(ex.global(c), vs[1]);
    }

    #[test]
    fn extraction_dedups_node_list() {
        let (g, vs) = path4();
        let ex = extract_induced(&g, &[vs[0], vs[0], vs[1], vs[0]]);
        assert_eq!(ex.graph.node_count(), 2);
    }

    #[test]
    fn fast_csr_and_builder_extraction_agree() {
        // A graph with multiple labels, parallel multi-labeled edges and a
        // self-loop; extract a sorted subset (fast CSR path) and the same
        // subset rotated (builder fallback) and compare structure through
        // the global id maps.
        let vocab = Vocab::new();
        let (a, bb) = (vocab.intern("a"), vocab.intern("b"));
        let (e1, e2) = (vocab.intern("e1"), vocab.intern("e2"));
        let mut gb = GraphBuilder::new(vocab);
        let ns: Vec<NodeId> =
            (0..6).map(|i| gb.add_node(if i % 2 == 0 { a } else { bb })).collect();
        for w in ns.windows(2) {
            gb.add_edge(w[0], w[1], e1);
            gb.add_edge(w[0], w[1], e2);
        }
        gb.add_edge(ns[2], ns[2], e1); // self-loop
        gb.add_edge(ns[4], ns[0], e2); // back edge
        let g = gb.build();

        let sorted = vec![ns[0], ns[2], ns[3], ns[4]];
        let rotated = vec![ns[3], ns[4], ns[0], ns[2]];
        let fast = extract_induced(&g, &sorted);
        let slow = extract_induced(&g, &rotated);
        assert_eq!(fast.graph.node_count(), slow.graph.node_count());
        assert_eq!(fast.graph.edge_count(), slow.graph.edge_count());
        for &u in &sorted {
            let (fu, su) = (fast.local(u).unwrap(), slow.local(u).unwrap());
            assert_eq!(fast.graph.node_label(fu), slow.graph.node_label(su));
            assert_eq!(fast.graph.out_degree(fu), slow.graph.out_degree(su), "node {u}");
            assert_eq!(fast.graph.in_degree(fu), slow.graph.in_degree(su), "node {u}");
            // Adjacency invariants the matcher relies on.
            assert!(fast.graph.out_edges(fu).is_sorted());
            assert!(fast.graph.in_edges(fu).is_sorted());
            for &v in &sorted {
                for l in [g.vocab().get("e1").unwrap(), g.vocab().get("e2").unwrap()] {
                    assert_eq!(
                        fast.graph.has_edge(fu, fast.local(v).unwrap(), l),
                        slow.graph.has_edge(su, slow.local(v).unwrap(), l),
                        "edge {u}->{v} label {l:?}"
                    );
                }
            }
            // Label index agrees with the node labels.
            let lbl = fast.graph.node_label(fu);
            assert!(fast.graph.nodes_with_label_slice(lbl).contains(&fu));
        }
    }
}
