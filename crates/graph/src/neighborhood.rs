//! BFS neighborhoods and induced-subgraph extraction.
//!
//! These are the locality primitives behind both algorithms in the paper:
//! for any GPAR `R` of radius ≤ `d` at `x` and any node `v_x`,
//! `v_x ∈ P_R(x, G)` iff `v_x ∈ P_R(x, G_d(v_x))` where `G_d(v_x)` is the
//! subgraph *induced* by `N_d(v_x)` (§4.2 "data locality of subgraph
//! isomorphism"). Fragmentation (crate `gpar-partition`) builds on
//! [`ball`] + [`extract_induced`].

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// BFS over the *undirected* view of `g` from `start`, up to `max_depth`
/// hops. Returns `(node, depth)` pairs in visit order; `start` is included
/// at depth 0.
pub fn bfs_layers(g: &Graph, start: NodeId, max_depth: u32) -> Vec<(NodeId, u32)> {
    let mut seen: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen.insert(start, 0);
    order.push((start, 0));
    queue.push_back((start, 0));
    while let Some((v, depth)) = queue.pop_front() {
        if depth == max_depth {
            continue;
        }
        for e in g.out_edges(v).iter().chain(g.in_edges(v)) {
            if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(e.node) {
                slot.insert(depth + 1);
                order.push((e.node, depth + 1));
                queue.push_back((e.node, depth + 1));
            }
        }
    }
    order
}

/// The ball `N_r(v)`: all nodes within undirected radius `r` of `v`
/// (including `v`), sorted by node id.
pub fn ball(g: &Graph, v: NodeId, r: u32) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = bfs_layers(g, v, r).into_iter().map(|(n, _)| n).collect();
    nodes.sort_unstable();
    nodes
}

/// Undirected distance between two nodes, if connected within `max_depth`.
pub fn undirected_distance(g: &Graph, a: NodeId, b: NodeId, max_depth: u32) -> Option<u32> {
    bfs_layers(g, a, max_depth).into_iter().find(|&(n, _)| n == b).map(|(_, d)| d)
}

/// A subgraph extracted from a parent graph, with the mapping back to
/// parent ("global") node ids.
#[derive(Debug, Clone)]
pub struct Extracted {
    /// The induced subgraph, with local dense node ids.
    pub graph: Graph,
    /// `to_global[local.index()]` is the parent-graph id of a local node.
    pub to_global: Vec<NodeId>,
    /// Reverse map from parent-graph id to local id.
    pub to_local: FxHashMap<NodeId, NodeId>,
}

impl Extracted {
    /// Translates a local node id back to the parent graph.
    #[inline]
    pub fn global(&self, local: NodeId) -> NodeId {
        self.to_global[local.index()]
    }

    /// Translates a parent-graph node id into this subgraph, if present.
    #[inline]
    pub fn local(&self, global: NodeId) -> Option<NodeId> {
        self.to_local.get(&global).copied()
    }
}

/// Extracts the subgraph of `g` *induced* by `nodes` (§2.1: all edges of `g`
/// whose endpoints are both in the set), preserving labels and sharing the
/// vocabulary.
///
/// `nodes` may be unsorted and may contain duplicates; local ids are
/// assigned in first-occurrence order.
pub fn extract_induced(g: &Graph, nodes: &[NodeId]) -> Extracted {
    let mut to_local: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    to_local.reserve(nodes.len());
    let mut to_global = Vec::with_capacity(nodes.len());
    let mut b = GraphBuilder::new(g.vocab().clone());
    for &v in nodes {
        if let std::collections::hash_map::Entry::Vacant(slot) = to_local.entry(v) {
            slot.insert(b.add_node(g.node_label(v)));
            to_global.push(v);
        }
    }
    for (&global, &local) in to_local.clone().iter() {
        for e in g.out_edges(global) {
            if let Some(&dst) = to_local.get(&e.node) {
                b.add_edge(local, dst, e.label);
            }
        }
    }
    Extracted { graph: b.build(), to_global, to_local }
}

/// Extracts `G_d(v_x)`: the subgraph induced by `N_d(v_x)`, together with
/// the local id of the center.
pub fn d_neighborhood(g: &Graph, center: NodeId, d: u32) -> (Extracted, NodeId) {
    let nodes = ball(g, center, d);
    let ex = extract_induced(g, &nodes);
    let c = ex.local(center).expect("center is in its own ball");
    (ex, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Vocab;

    /// A directed path v0 -> v1 -> v2 -> v3 with one label.
    fn path4() -> (Graph, Vec<NodeId>) {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let vs: Vec<NodeId> = (0..4).map(|_| b.add_node(n)).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], e);
        }
        (b.build(), vs)
    }

    #[test]
    fn bfs_is_undirected_and_depth_bounded() {
        let (g, vs) = path4();
        // From the *end* of the path, in-edges must be traversed too.
        let l1 = bfs_layers(&g, vs[3], 1);
        assert_eq!(l1.len(), 2);
        assert!(l1.contains(&(vs[2], 1)));
        let l3 = bfs_layers(&g, vs[3], 3);
        assert_eq!(l3.len(), 4);
        assert!(l3.contains(&(vs[0], 3)));
    }

    #[test]
    fn ball_includes_center_and_is_sorted() {
        let (g, vs) = path4();
        let b = ball(&g, vs[1], 1);
        assert_eq!(b, vec![vs[0], vs[1], vs[2]]);
    }

    #[test]
    fn undirected_distance_matches_path_lengths() {
        let (g, vs) = path4();
        assert_eq!(undirected_distance(&g, vs[0], vs[3], 5), Some(3));
        assert_eq!(undirected_distance(&g, vs[0], vs[3], 2), None);
        assert_eq!(undirected_distance(&g, vs[2], vs[2], 0), Some(0));
    }

    #[test]
    fn induced_extraction_keeps_internal_edges_only() {
        let (g, vs) = path4();
        let ex = extract_induced(&g, &[vs[0], vs[1], vs[3]]);
        assert_eq!(ex.graph.node_count(), 3);
        // Only v0->v1 survives; v1->v2 and v2->v3 have an endpoint outside.
        assert_eq!(ex.graph.edge_count(), 1);
        let l0 = ex.local(vs[0]).unwrap();
        let l1 = ex.local(vs[1]).unwrap();
        let e = g.vocab().get("e").unwrap();
        assert!(ex.graph.has_edge(l0, l1, e));
        assert_eq!(ex.global(l0), vs[0]);
        assert_eq!(ex.local(vs[2]), None);
    }

    #[test]
    fn d_neighborhood_is_the_induced_ball() {
        let (g, vs) = path4();
        let (ex, c) = d_neighborhood(&g, vs[1], 1);
        assert_eq!(ex.graph.node_count(), 3);
        assert_eq!(ex.graph.edge_count(), 2); // v0->v1, v1->v2 are internal
        assert_eq!(ex.global(c), vs[1]);
    }

    #[test]
    fn extraction_dedups_node_list() {
        let (g, vs) = path4();
        let ex = extract_induced(&g, &[vs[0], vs[0], vs[1], vs[0]]);
        assert_eq!(ex.graph.node_count(), 2);
    }
}
