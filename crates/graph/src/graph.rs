//! The immutable CSR-packed graph.

use crate::label::{Label, Vocab};
use std::fmt;
use std::sync::Arc;

/// A node identifier, dense in `0..graph.node_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A half-edge as stored in an adjacency slice: the edge label plus the
/// other endpoint. Ordering is `(label, endpoint)` so that all edges with a
/// given label form a contiguous, binary-searchable run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Edge label (e.g. `friend`, `like`, `visit`).
    pub label: Label,
    /// The other endpoint (target for out-edges, source for in-edges).
    pub node: NodeId,
}

/// An immutable labeled directed multigraph `G = (V, E, L)` (§2.1 of the
/// paper).
///
/// Both out- and in-adjacency are materialized as CSR arrays whose per-node
/// slices are sorted by `(label, endpoint)`. This supports, in `O(log deg)`:
///
/// * [`Graph::has_edge`] — the edge-existence probes at the heart of
///   subgraph-isomorphism feasibility checks, and
/// * [`Graph::out_edges_labeled`] / [`Graph::in_edges_labeled`] — label-
///   restricted neighbor ranges used for candidate generation.
///
/// Parallel edges with identical `(src, dst, label)` are deduplicated at
/// build time (the paper's `E ⊆ V × V` is a set); parallel edges with
/// *different* labels are kept, as in property graphs.
#[derive(Clone)]
pub struct Graph {
    pub(crate) node_labels: Vec<Label>,
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_adj: Vec<Edge>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_adj: Vec<Edge>,
    /// All node ids grouped by label: sorted by `(label, id)`, so each
    /// label's nodes form one contiguous, id-ordered run.
    pub(crate) label_nodes: Vec<NodeId>,
    /// Run starts into `label_nodes`, one `(label, start)` per distinct
    /// label present, sorted by label (a terminal sentinel closes the
    /// last run).
    pub(crate) label_starts: Vec<(Label, u32)>,
    pub(crate) vocab: Arc<Vocab>,
}

impl Graph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of directed edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_adj.len()
    }

    /// The paper's size measure `|G| = |V| + |E|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// The shared label vocabulary.
    #[inline]
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// The label `L(v)` of a node.
    #[inline]
    pub fn node_label(&self, v: NodeId) -> Label {
        self.node_labels[v.index()]
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// All nodes carrying `label`, in id order — a slice of the
    /// label-partitioned node index, served in `O(log #labels)` instead of
    /// the former full `O(|V|)` scan.
    pub fn nodes_with_label(&self, label: Label) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.nodes_with_label_slice(label).iter().copied()
    }

    /// The contiguous id-ordered run of nodes labeled `label`.
    #[inline]
    pub fn nodes_with_label_slice(&self, label: Label) -> &[NodeId] {
        // `label_starts` ends with a sentinel (excluded from the search),
        // so `i + 1` is always valid for a hit and every run is
        // `starts[i].1 .. starts[i + 1].1`.
        let runs = &self.label_starts[..self.label_starts.len().saturating_sub(1)];
        match runs.binary_search_by_key(&label, |&(l, _)| l) {
            Ok(i) => {
                let lo = self.label_starts[i].1 as usize;
                let hi = self.label_starts[i + 1].1 as usize;
                &self.label_nodes[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// Number of nodes carrying `label`.
    #[inline]
    pub fn label_count(&self, label: Label) -> usize {
        self.nodes_with_label_slice(label).len()
    }

    /// Out-adjacency slice of `v`, sorted by `(label, target)`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[Edge] {
        let i = v.index();
        &self.out_adj[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-adjacency slice of `v`, sorted by `(label, source)`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[Edge] {
        let i = v.index();
        &self.in_adj[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges(v).len()
    }

    /// Total (undirected) degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// The contiguous run of out-edges of `v` labeled `label`.
    #[inline]
    pub fn out_edges_labeled(&self, v: NodeId, label: Label) -> &[Edge] {
        labeled_range(self.out_edges(v), label)
    }

    /// The contiguous run of in-edges of `v` labeled `label`.
    #[inline]
    pub fn in_edges_labeled(&self, v: NodeId, label: Label) -> &[Edge] {
        labeled_range(self.in_edges(v), label)
    }

    /// Whether the directed edge `(src, dst)` with `label` exists.
    #[inline]
    pub fn has_edge(&self, src: NodeId, dst: NodeId, label: Label) -> bool {
        self.out_edges(src).binary_search(&Edge { label, node: dst }).is_ok()
    }

    /// Whether `v` has at least one out-edge labeled `label` — the paper's
    /// "has at least one edge of type q" test used by the LCWA trichotomy.
    #[inline]
    pub fn has_out_label(&self, v: NodeId, label: Label) -> bool {
        !self.out_edges_labeled(v, label).is_empty()
    }

    /// Whether node `v'` is a *descendant* of `v` (reachable by a directed
    /// path, §2.1 notation (5)).
    pub fn is_descendant(&self, v: NodeId, target: NodeId) -> bool {
        if v == target {
            return false; // a path of length >= 1 is required
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![v];
        seen[v.index()] = true;
        while let Some(u) = stack.pop() {
            for e in self.out_edges(u) {
                if e.node == target {
                    return true;
                }
                if !seen[e.node.index()] {
                    seen[e.node.index()] = true;
                    stack.push(e.node);
                }
            }
        }
        false
    }

    /// Per-label node counts, used for sketch/statistics construction.
    pub fn node_label_histogram(&self) -> rustc_hash::FxHashMap<Label, u64> {
        let mut h = rustc_hash::FxHashMap::default();
        for &l in &self.node_labels {
            *h.entry(l).or_insert(0) += 1;
        }
        h
    }

    /// Per-label directed-edge counts.
    pub fn edge_label_histogram(&self) -> rustc_hash::FxHashMap<Label, u64> {
        let mut h = rustc_hash::FxHashMap::default();
        for e in &self.out_adj {
            *h.entry(e.label).or_insert(0) += 1;
        }
        h
    }

    /// Most frequent `(src-label, edge-label, dst-label)` triples — the
    /// "most frequent edge patterns" DMine seeds mining with when no
    /// predicate is given (§4.2 Remarks, §6 Exp-1).
    pub fn frequent_edge_patterns(&self, top: usize) -> Vec<((Label, Label, Label), u64)> {
        let mut h: rustc_hash::FxHashMap<(Label, Label, Label), u64> = Default::default();
        for v in self.nodes() {
            let lv = self.node_label(v);
            for e in self.out_edges(v) {
                *h.entry((lv, e.label, self.node_label(e.node))).or_insert(0) += 1;
            }
        }
        let mut v: Vec<_> = h.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }
}

#[inline]
pub(crate) fn labeled_range(adj: &[Edge], label: Label) -> &[Edge] {
    // One binary search for the run start, then a second over the
    // *remainder* for the run end: same O(log deg) bound as two full
    // searches (length-only callers like `has_out_label` and the
    // matcher's labeled-degree probes stay cheap on high-degree hubs),
    // but the narrowed suffix costs measurably less on the short runs
    // the matcher consumes.
    let lo = adj.partition_point(|e| e.label < label);
    let hi = lo + adj[lo..].partition_point(|e| e.label <= label);
    &adj[lo..hi]
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(|V|={}, |E|={}, labels={})",
            self.node_count(),
            self.edge_count(),
            self.vocab.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::label::Vocab;

    #[test]
    fn adjacency_is_sorted_and_labeled_ranges_work() {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let cust = vocab.intern("cust");
        let like = vocab.intern("like");
        let follow = vocab.intern("follow");
        let a = b.add_node(cust);
        let x = b.add_node(cust);
        let y = b.add_node(cust);
        let z = b.add_node(cust);
        b.add_edge(a, y, like);
        b.add_edge(a, x, follow);
        b.add_edge(a, z, like);
        b.add_edge(a, x, like);
        let g = b.build();

        let likes = g.out_edges_labeled(a, like);
        assert_eq!(likes.len(), 3);
        assert!(likes.windows(2).all(|w| w[0].node < w[1].node));
        assert_eq!(g.out_edges_labeled(a, follow).len(), 1);
        assert!(g.has_edge(a, x, like));
        assert!(!g.has_edge(x, a, like));
        assert!(g.has_out_label(a, follow));
        assert!(!g.has_out_label(x, follow));
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let l = vocab.intern("n");
        let e = vocab.intern("e");
        let n0 = b.add_node(l);
        let n1 = b.add_node(l);
        let n2 = b.add_node(l);
        b.add_edge(n0, n2, e);
        b.add_edge(n1, n2, e);
        let g = b.build();
        assert_eq!(g.in_degree(n2), 2);
        assert_eq!(g.out_degree(n2), 0);
        let srcs: Vec<_> = g.in_edges(n2).iter().map(|e| e.node).collect();
        assert_eq!(srcs, vec![n0, n1]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let l = vocab.intern("n");
        let e = vocab.intern("e");
        let f = vocab.intern("f");
        let n0 = b.add_node(l);
        let n1 = b.add_node(l);
        b.add_edge(n0, n1, e);
        b.add_edge(n0, n1, e);
        b.add_edge(n0, n1, f); // different label: kept
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn descendant_follows_directed_paths_only() {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let l = vocab.intern("n");
        let e = vocab.intern("e");
        let n0 = b.add_node(l);
        let n1 = b.add_node(l);
        let n2 = b.add_node(l);
        b.add_edge(n0, n1, e);
        b.add_edge(n1, n2, e);
        let g = b.build();
        assert!(g.is_descendant(n0, n2));
        assert!(!g.is_descendant(n2, n0));
        assert!(!g.is_descendant(n0, n0));
    }

    #[test]
    fn frequent_edge_patterns_rank_by_count() {
        let vocab = Vocab::new();
        let mut b = GraphBuilder::new(vocab.clone());
        let cust = vocab.intern("cust");
        let shop = vocab.intern("shop");
        let like = vocab.intern("like");
        let visit = vocab.intern("visit");
        let c0 = b.add_node(cust);
        let c1 = b.add_node(cust);
        let s = b.add_node(shop);
        b.add_edge(c0, s, like);
        b.add_edge(c1, s, like);
        b.add_edge(c0, s, visit);
        let g = b.build();
        let top = g.frequent_edge_patterns(10);
        assert_eq!(top[0], ((cust, like, shop), 2));
        assert_eq!(top[1], ((cust, visit, shop), 1));
    }
}
