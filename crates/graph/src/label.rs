//! Interned labels and the shared vocabulary.
//!
//! Labels in the paper double as *search conditions*: a pattern node labeled
//! `"44"` only matches data nodes labeled `"44"` (value binding, see `Q3` in
//! Fig. 1 of the paper). Interning every label string into a dense `u32`
//! symbol makes label comparison a single integer compare and lets adjacency
//! arrays store labels inline.

use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// An interned label symbol.
///
/// Labels are only meaningful relative to the [`Vocab`] that produced them;
/// graphs, patterns and fragments participating in one mining task must share
/// a single vocabulary (they do automatically when built through the same
/// [`crate::GraphBuilder`] / generator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// The dense index of this label in its vocabulary.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[derive(Default)]
struct VocabInner {
    map: FxHashMap<Arc<str>, Label>,
    strings: Vec<Arc<str>>,
}

/// A thread-safe, append-only string interner.
///
/// `Vocab` is shared via [`Arc`] between the graph, its fragments, patterns
/// and generators. Interning takes a write lock; resolution takes a read
/// lock and returns a cheap `Arc<str>` clone, so hot paths never hold lock
/// guards across user code.
#[derive(Default)]
pub struct Vocab {
    inner: RwLock<VocabInner>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Interns `s`, returning its symbol (allocating one if unseen).
    pub fn intern(&self, s: &str) -> Label {
        if let Some(&l) = self.inner.read().map.get(s) {
            return l;
        }
        let mut inner = self.inner.write();
        if let Some(&l) = inner.map.get(s) {
            return l;
        }
        let arc: Arc<str> = Arc::from(s);
        let l = Label(inner.strings.len() as u32);
        inner.strings.push(arc.clone());
        inner.map.insert(arc, l);
        l
    }

    /// Looks up `s` without interning it.
    pub fn get(&self, s: &str) -> Option<Label> {
        self.inner.read().map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `l` was not produced by this vocabulary.
    pub fn resolve(&self, l: Label) -> Arc<str> {
        self.inner.read().strings[l.index()].clone()
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Vocab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vocab({} labels)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let v = Vocab::new();
        let a = v.intern("cust");
        let b = v.intern("cust");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_labels() {
        let v = Vocab::new();
        let a = v.intern("cust");
        let b = v.intern("city");
        assert_ne!(a, b);
        assert_eq!(v.resolve(a).as_ref(), "cust");
        assert_eq!(v.resolve(b).as_ref(), "city");
    }

    #[test]
    fn get_does_not_intern() {
        let v = Vocab::new();
        assert_eq!(v.get("nothing"), None);
        assert!(v.is_empty());
        let l = v.intern("x");
        assert_eq!(v.get("x"), Some(l));
    }

    #[test]
    fn concurrent_interning_converges() {
        let v = Vocab::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let v = Arc::clone(&v);
                s.spawn(move || {
                    for i in 0..100 {
                        v.intern(&format!("label-{}", i % 10));
                    }
                });
            }
        });
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn value_bindings_are_plain_labels() {
        // The paper encodes value bindings like zip code "44" as labels.
        let v = Vocab::new();
        let zip = v.intern("44");
        assert_eq!(v.resolve(zip).as_ref(), "44");
    }
}
