//! The read-only graph abstraction shared by the CSR [`Graph`] and the
//! [`crate::DeltaGraph`] overlay.
//!
//! Every traversal primitive in this crate (BFS, d-balls, induced
//! extraction, sketches) and every consumer up the stack (LCWA
//! classification, site building, EIP) reads a graph through exactly one
//! surface: node labels, label membership, and per-node adjacency served
//! as an [`EdgeView`] — a *triple* of `(label, endpoint)`-sorted runs: the
//! frozen CSR run, an overlay run of inserted edges, and a tombstone run
//! of deleted base edges that is **subtracted** from the CSR run. For a
//! plain [`Graph`] the overlay and tombstone runs are empty and every
//! operation degenerates to the old single-slice code path; for a
//! [`crate::DeltaGraph`] the runs are probed (and, where order matters,
//! merge-minus'd) without ever materializing a combined adjacency. This is
//! what lets the matcher and `gpar_eip::identify` run unmodified over a
//! graph with pending inserts *and* deletions.

use crate::graph::{labeled_range, Edge, Graph, NodeId};
use crate::label::{Label, Vocab};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// A node's adjacency as three `(label, endpoint)`-sorted runs: the base
/// CSR slice, the overlay's insert log for that node, and the overlay's
/// tombstone log of deleted base edges. Invariants: `delta` is disjoint
/// from `base`, and `tombs ⊆ base` — so `len` is exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeView<'a> {
    /// The frozen CSR run.
    pub base: &'a [Edge],
    /// Inserted edges not yet compacted into the CSR.
    pub delta: &'a [Edge],
    /// Deleted base edges not yet compacted out of the CSR; every entry
    /// also occurs in `base` and is skipped by all read paths.
    pub tombs: &'a [Edge],
}

impl<'a> EdgeView<'a> {
    /// A view over a single sorted slice (no overlay, no tombstones).
    #[inline]
    pub fn solid(base: &'a [Edge]) -> Self {
        Self { base, delta: &[], tombs: &[] }
    }

    /// Total number of edges in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len() - self.tombs.len()
    }

    /// Whether the view holds no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the surviving base run (base minus tombstones) followed by
    /// the delta run. Not globally sorted — use [`EdgeView::merged`] when
    /// `(label, endpoint)` order matters.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = Edge> + 'a {
        SubtractedRun { base: self.base, tombs: self.tombs }.chain(self.delta.iter().copied())
    }

    /// Iterates the union in `(label, endpoint)` order by merging the
    /// surviving base run with the delta run (a no-op passthrough when
    /// both overlay runs are empty).
    #[inline]
    pub fn merged(&self) -> MergedEdges<'a> {
        MergedEdges { base: self.base, delta: self.delta, tombs: self.tombs }
    }

    /// The sub-view restricted to edges labeled `label` (all runs are
    /// sorted, so this is three binary searches).
    #[inline]
    pub fn labeled(&self, label: Label) -> EdgeView<'a> {
        EdgeView {
            base: labeled_range(self.base, label),
            delta: labeled_range(self.delta, label),
            tombs: labeled_range(self.tombs, label),
        }
    }

    /// Whether the exact edge is present in the view (in the base run and
    /// not tombstoned, or in the delta run).
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        (self.base.binary_search(&e).is_ok() && self.tombs.binary_search(&e).is_err())
            || self.delta.binary_search(&e).is_ok()
    }
}

/// Iterator over a sorted run minus a sorted tombstone subset (two-pointer
/// subtraction; the tombstone run is empty in the common case, so the
/// per-item overhead is one slice-head probe).
#[derive(Debug, Clone)]
struct SubtractedRun<'a> {
    base: &'a [Edge],
    tombs: &'a [Edge],
}

impl Iterator for SubtractedRun<'_> {
    type Item = Edge;

    #[inline]
    fn next(&mut self) -> Option<Edge> {
        while let Some((&b, rest)) = self.base.split_first() {
            self.base = rest;
            // Both runs are sorted and tombs ⊆ base, so the next relevant
            // tombstone is always at the head.
            if self.tombs.first() == Some(&b) {
                self.tombs = &self.tombs[1..];
                continue;
            }
            return Some(b);
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.base.len() - self.tombs.len();
        (n, Some(n))
    }
}

/// Sorted merge-minus iterator over the runs of an [`EdgeView`]: yields
/// `(base ∖ tombs) ∪ delta` in `(label, endpoint)` order.
#[derive(Debug, Clone)]
pub struct MergedEdges<'a> {
    base: &'a [Edge],
    delta: &'a [Edge],
    tombs: &'a [Edge],
}

impl Iterator for MergedEdges<'_> {
    type Item = Edge;

    #[inline]
    fn next(&mut self) -> Option<Edge> {
        loop {
            match (self.base.first(), self.delta.first()) {
                (Some(&b), d) => {
                    if self.tombs.first() == Some(&b) {
                        self.tombs = &self.tombs[1..];
                        self.base = &self.base[1..];
                        continue;
                    }
                    // `delta` is disjoint from `base`, so ties cannot occur.
                    match d {
                        Some(&d) if d < b => {
                            self.delta = &self.delta[1..];
                            return Some(d);
                        }
                        _ => {
                            self.base = &self.base[1..];
                            return Some(b);
                        }
                    }
                }
                (None, Some(&d)) => {
                    self.delta = &self.delta[1..];
                    return Some(d);
                }
                (None, None) => return None,
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.base.len() + self.delta.len() - self.tombs.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for MergedEdges<'_> {}

/// Read access to a labeled directed multigraph, implemented by the
/// frozen CSR [`Graph`] and by the [`crate::DeltaGraph`] overlay.
///
/// Method names deliberately avoid colliding with `Graph`'s inherent
/// slice-returning accessors where the signatures differ (`out_view` vs
/// `out_edges`); where they coincide (`node_count`, `node_label`, …) the
/// inherent method shadows the trait method with identical behavior.
pub trait GraphView {
    /// Size of the node **id space**: every live node id is strictly below
    /// this bound. For an overlay with pending node removals this counts
    /// the removed slots too (ids are never recycled until compaction), so
    /// use [`GraphView::nodes`] — not `0..node_count()` — to enumerate
    /// live nodes.
    fn node_count(&self) -> usize;

    /// Number of live directed edges `|E|`.
    fn edge_count(&self) -> usize;

    /// The shared label vocabulary.
    fn vocab(&self) -> &Arc<Vocab>;

    /// The label `L(v)` of a node. For a removed node id the returned
    /// value is unspecified (removed nodes are excluded from every other
    /// read surface).
    fn node_label(&self, v: NodeId) -> Label;

    /// Out-adjacency of `v` as a three-run view (each run sorted by
    /// `(label, target)`).
    fn out_view(&self, v: NodeId) -> EdgeView<'_>;

    /// In-adjacency of `v` as a three-run view (each run sorted by
    /// `(label, source)`).
    fn in_view(&self, v: NodeId) -> EdgeView<'_>;

    /// Iterator over all **live** node ids (ascending; removed slots are
    /// skipped).
    fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// All live nodes carrying `label`, sorted by id. Allocates: overlays
    /// cannot serve this as one contiguous slice. Call once per candidate
    /// discovery, not per probe.
    fn label_members(&self, label: Label) -> Vec<NodeId>;

    /// Whether the directed edge `(src, dst)` with `label` exists.
    #[inline]
    fn has_edge_view(&self, src: NodeId, dst: NodeId, label: Label) -> bool {
        self.out_view(src).contains(Edge { label, node: dst })
    }

    /// Whether `v` has at least one out-edge labeled `label` (the LCWA
    /// trichotomy's "knows about q" probe).
    #[inline]
    fn has_out_label_view(&self, v: NodeId, label: Label) -> bool {
        !self.out_view(v).labeled(label).is_empty()
    }

    /// Per-label node counts (live nodes only).
    fn node_histogram(&self) -> FxHashMap<Label, u64> {
        let mut h = FxHashMap::default();
        for v in self.nodes() {
            *h.entry(self.node_label(v)).or_insert(0) += 1;
        }
        h
    }

    /// Per-label directed-edge counts (live edges only).
    fn edge_histogram(&self) -> FxHashMap<Label, u64> {
        let mut h = FxHashMap::default();
        for v in self.nodes() {
            for e in self.out_view(v).iter() {
                *h.entry(e.label).or_insert(0) += 1;
            }
        }
        h
    }
}

impl GraphView for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    #[inline]
    fn vocab(&self) -> &Arc<Vocab> {
        Graph::vocab(self)
    }

    #[inline]
    fn node_label(&self, v: NodeId) -> Label {
        Graph::node_label(self, v)
    }

    #[inline]
    fn out_view(&self, v: NodeId) -> EdgeView<'_> {
        EdgeView::solid(self.out_edges(v))
    }

    #[inline]
    fn in_view(&self, v: NodeId) -> EdgeView<'_> {
        EdgeView::solid(self.in_edges(v))
    }

    fn label_members(&self, label: Label) -> Vec<NodeId> {
        self.nodes_with_label_slice(label).to_vec()
    }

    fn node_histogram(&self) -> FxHashMap<Label, u64> {
        self.node_label_histogram()
    }

    fn edge_histogram(&self) -> FxHashMap<Label, u64> {
        self.edge_label_histogram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(l: u32, n: u32) -> Edge {
        Edge { label: Label(l), node: NodeId(n) }
    }

    #[test]
    fn merged_interleaves_sorted_runs() {
        let base = [e(1, 0), e(1, 4), e(3, 2)];
        let delta = [e(1, 2), e(2, 0), e(3, 9)];
        let v = EdgeView { base: &base, delta: &delta, tombs: &[] };
        let merged: Vec<Edge> = v.merged().collect();
        assert_eq!(merged.len(), v.len());
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v.merged().len(), 6);
    }

    #[test]
    fn labeled_narrows_both_runs() {
        let base = [e(1, 0), e(1, 4), e(3, 2)];
        let delta = [e(1, 2), e(2, 0)];
        let v = EdgeView { base: &base, delta: &delta, tombs: &[] };
        let ones = v.labeled(Label(1));
        assert_eq!((ones.base.len(), ones.delta.len()), (2, 1));
        assert!(v.labeled(Label(9)).is_empty());
        assert!(v.contains(e(2, 0)));
        assert!(!v.contains(e(2, 1)));
    }

    #[test]
    fn tombstones_subtract_from_every_read_path() {
        let base = [e(1, 0), e(1, 4), e(2, 3), e(3, 2)];
        let delta = [e(1, 2), e(2, 0)];
        let tombs = [e(1, 4), e(3, 2)];
        let v = EdgeView { base: &base, delta: &delta, tombs: &tombs };
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        // contains: tombstoned base edges are gone, survivors and delta stay.
        assert!(!v.contains(e(1, 4)));
        assert!(!v.contains(e(3, 2)));
        assert!(v.contains(e(1, 0)));
        assert!(v.contains(e(1, 2)));
        // iter: survivors + delta, no tombstoned entry.
        let mut seen: Vec<Edge> = v.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![e(1, 0), e(1, 2), e(2, 0), e(2, 3)]);
        // merged: same set, already sorted, exact length.
        let merged: Vec<Edge> = v.merged().collect();
        assert_eq!(merged, seen);
        assert_eq!(v.merged().len(), 4);
        // labeled narrows the tombstone run alongside the others.
        let ones = v.labeled(Label(1));
        assert_eq!(ones.len(), 2);
        assert!(!ones.contains(e(1, 4)));
        // A fully-tombstoned label reads as empty.
        let threes = v.labeled(Label(3));
        assert!(threes.is_empty());
    }

    #[test]
    fn fully_tombstoned_view_is_empty() {
        let base = [e(1, 0), e(2, 3)];
        let tombs = base;
        let v = EdgeView { base: &base, delta: &[], tombs: &tombs };
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
        assert_eq!(v.merged().count(), 0);
    }
}
