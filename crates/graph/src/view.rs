//! The read-only graph abstraction shared by the CSR [`Graph`] and the
//! [`crate::DeltaGraph`] overlay.
//!
//! Every traversal primitive in this crate (BFS, d-balls, induced
//! extraction, sketches) and every consumer up the stack (LCWA
//! classification, site building, EIP) reads a graph through exactly one
//! surface: node labels, label membership, and per-node adjacency served
//! as an [`EdgeView`] — a *pair* of `(label, endpoint)`-sorted runs, the
//! frozen CSR run plus an overlay run of inserted edges. For a plain
//! [`Graph`] the overlay run is empty and every operation degenerates to
//! the old single-slice code path; for a [`crate::DeltaGraph`] the two
//! runs are probed (and, where order matters, merged) without ever
//! materializing a combined adjacency. This is what lets the matcher and
//! `gpar_eip::identify` run unmodified over a graph with pending inserts.

use crate::graph::{labeled_range, Edge, Graph, NodeId};
use crate::label::{Label, Vocab};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// A node's adjacency as two `(label, endpoint)`-sorted runs: the base
/// CSR slice and the overlay's insert log for that node. The runs are
/// disjoint (the overlay never duplicates a base edge) so `len` is exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeView<'a> {
    /// The frozen CSR run.
    pub base: &'a [Edge],
    /// Inserted edges not yet compacted into the CSR.
    pub delta: &'a [Edge],
}

impl<'a> EdgeView<'a> {
    /// A view over a single sorted slice (no overlay).
    #[inline]
    pub fn solid(base: &'a [Edge]) -> Self {
        Self { base, delta: &[] }
    }

    /// Total number of edges in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// Whether the view holds no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.delta.is_empty()
    }

    /// Iterates both runs, base first. Not globally sorted — use
    /// [`EdgeView::merged`] when `(label, endpoint)` order matters.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = Edge> + 'a {
        self.base.iter().copied().chain(self.delta.iter().copied())
    }

    /// Iterates the union in `(label, endpoint)` order by merging the two
    /// sorted runs (a no-op passthrough when the overlay run is empty).
    #[inline]
    pub fn merged(&self) -> MergedEdges<'a> {
        MergedEdges { base: self.base, delta: self.delta }
    }

    /// The sub-view restricted to edges labeled `label` (both runs are
    /// sorted, so this is two binary searches).
    #[inline]
    pub fn labeled(&self, label: Label) -> EdgeView<'a> {
        EdgeView { base: labeled_range(self.base, label), delta: labeled_range(self.delta, label) }
    }

    /// Whether the exact edge is present in either run.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        self.base.binary_search(&e).is_ok() || self.delta.binary_search(&e).is_ok()
    }
}

/// Sorted-merge iterator over the two runs of an [`EdgeView`].
#[derive(Debug, Clone)]
pub struct MergedEdges<'a> {
    base: &'a [Edge],
    delta: &'a [Edge],
}

impl Iterator for MergedEdges<'_> {
    type Item = Edge;

    #[inline]
    fn next(&mut self) -> Option<Edge> {
        match (self.base.first(), self.delta.first()) {
            (Some(&b), Some(&d)) => {
                if b <= d {
                    self.base = &self.base[1..];
                    Some(b)
                } else {
                    self.delta = &self.delta[1..];
                    Some(d)
                }
            }
            (Some(&b), None) => {
                self.base = &self.base[1..];
                Some(b)
            }
            (None, Some(&d)) => {
                self.delta = &self.delta[1..];
                Some(d)
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.base.len() + self.delta.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for MergedEdges<'_> {}

/// Read access to a labeled directed multigraph, implemented by the
/// frozen CSR [`Graph`] and by the [`crate::DeltaGraph`] overlay.
///
/// Method names deliberately avoid colliding with `Graph`'s inherent
/// slice-returning accessors where the signatures differ (`out_view` vs
/// `out_edges`); where they coincide (`node_count`, `node_label`, …) the
/// inherent method shadows the trait method with identical behavior.
pub trait GraphView {
    /// Number of nodes `|V|`.
    fn node_count(&self) -> usize;

    /// Number of directed edges `|E|`.
    fn edge_count(&self) -> usize;

    /// The shared label vocabulary.
    fn vocab(&self) -> &Arc<Vocab>;

    /// The label `L(v)` of a node.
    fn node_label(&self, v: NodeId) -> Label;

    /// Out-adjacency of `v` as a two-run view (each run sorted by
    /// `(label, target)`).
    fn out_view(&self, v: NodeId) -> EdgeView<'_>;

    /// In-adjacency of `v` as a two-run view (each run sorted by
    /// `(label, source)`).
    fn in_view(&self, v: NodeId) -> EdgeView<'_>;

    /// Iterator over all node ids (`0..node_count()`).
    fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// All nodes carrying `label`, sorted by id. Allocates: overlays
    /// cannot serve this as one contiguous slice. Call once per candidate
    /// discovery, not per probe.
    fn label_members(&self, label: Label) -> Vec<NodeId>;

    /// Whether the directed edge `(src, dst)` with `label` exists.
    #[inline]
    fn has_edge_view(&self, src: NodeId, dst: NodeId, label: Label) -> bool {
        self.out_view(src).contains(Edge { label, node: dst })
    }

    /// Whether `v` has at least one out-edge labeled `label` (the LCWA
    /// trichotomy's "knows about q" probe).
    #[inline]
    fn has_out_label_view(&self, v: NodeId, label: Label) -> bool {
        !self.out_view(v).labeled(label).is_empty()
    }

    /// Per-label node counts.
    fn node_histogram(&self) -> FxHashMap<Label, u64> {
        let mut h = FxHashMap::default();
        for v in self.nodes() {
            *h.entry(self.node_label(v)).or_insert(0) += 1;
        }
        h
    }

    /// Per-label directed-edge counts.
    fn edge_histogram(&self) -> FxHashMap<Label, u64> {
        let mut h = FxHashMap::default();
        for v in self.nodes() {
            for e in self.out_view(v).iter() {
                *h.entry(e.label).or_insert(0) += 1;
            }
        }
        h
    }
}

impl GraphView for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    #[inline]
    fn vocab(&self) -> &Arc<Vocab> {
        Graph::vocab(self)
    }

    #[inline]
    fn node_label(&self, v: NodeId) -> Label {
        Graph::node_label(self, v)
    }

    #[inline]
    fn out_view(&self, v: NodeId) -> EdgeView<'_> {
        EdgeView::solid(self.out_edges(v))
    }

    #[inline]
    fn in_view(&self, v: NodeId) -> EdgeView<'_> {
        EdgeView::solid(self.in_edges(v))
    }

    fn label_members(&self, label: Label) -> Vec<NodeId> {
        self.nodes_with_label_slice(label).to_vec()
    }

    fn node_histogram(&self) -> FxHashMap<Label, u64> {
        self.node_label_histogram()
    }

    fn edge_histogram(&self) -> FxHashMap<Label, u64> {
        self.edge_label_histogram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(l: u32, n: u32) -> Edge {
        Edge { label: Label(l), node: NodeId(n) }
    }

    #[test]
    fn merged_interleaves_sorted_runs() {
        let base = [e(1, 0), e(1, 4), e(3, 2)];
        let delta = [e(1, 2), e(2, 0), e(3, 9)];
        let v = EdgeView { base: &base, delta: &delta };
        let merged: Vec<Edge> = v.merged().collect();
        assert_eq!(merged.len(), v.len());
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v.merged().len(), 6);
    }

    #[test]
    fn labeled_narrows_both_runs() {
        let base = [e(1, 0), e(1, 4), e(3, 2)];
        let delta = [e(1, 2), e(2, 0)];
        let v = EdgeView { base: &base, delta: &delta };
        let ones = v.labeled(Label(1));
        assert_eq!((ones.base.len(), ones.delta.len()), (2, 1));
        assert!(v.labeled(Label(9)).is_empty());
        assert!(v.contains(e(2, 0)));
        assert!(!v.contains(e(2, 1)));
    }
}
