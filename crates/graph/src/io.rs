//! Graph serialization: a line-oriented text format and a compact binary
//! codec.
//!
//! # Text format
//!
//! ```text
//! # comment / blank lines ignored
//! v <id> <label>
//! e <src> <dst> <label>
//! ```
//!
//! Node ids must be dense `0..n` but may appear in any order. Labels are
//! whitespace-free tokens (use `_` in place of spaces).
//!
//! # Binary format
//!
//! [`write_graph_binary`] / [`read_graph_binary`] implement the compact
//! codec the serving layer persists catalogs and graphs with (see
//! `gpar-serve`). Layout (all integers LEB128 varints, see [`bin`]):
//!
//! ```text
//! magic  "GPARG01\n"
//! label table   count, then (len, utf8-bytes) per label
//! nodes         count, then a label-table index per node
//! edges         per node: out-degree, then (label-index, dst) per edge
//! ```
//!
//! The label table localizes labels so the format is self-contained:
//! reading interns every referenced string into the destination [`Vocab`],
//! which need not be the vocabulary the graph was written with.

use crate::graph::{Graph, NodeId};
use crate::label::{Label, Vocab};
use crate::GraphBuilder;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

/// Errors produced while parsing the text graph format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Malformed(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads a graph in the text format from `reader`, interning labels into
/// `vocab`.
pub fn read_graph(reader: impl Read, vocab: Arc<Vocab>) -> Result<Graph, ParseError> {
    // Holes created by an out-of-order declaration remember the line that
    // implied them (`implied_at`), so "never declared" diagnostics can
    // point at a real line instead of the historic `line 0`.
    let mut nodes: Vec<Option<crate::Label>> = Vec::new();
    let mut implied_at: Vec<usize> = Vec::new();
    let mut edges: Vec<(u32, u32, crate::Label, usize)> = Vec::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let kind = it.next().unwrap();
        let malformed = |msg: &str| ParseError::Malformed(lineno, msg.to_string());
        match kind {
            "v" => {
                let id: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| malformed("expected `v <id> <label>`"))?;
                let label = it.next().ok_or_else(|| malformed("expected `v <id> <label>`"))?;
                if id >= nodes.len() {
                    nodes.resize(id + 1, None);
                    implied_at.resize(id + 1, lineno);
                }
                if nodes[id].is_some() {
                    return Err(malformed(&format!("duplicate node id {id}")));
                }
                nodes[id] = Some(vocab.intern(label));
            }
            "e" => {
                let src: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| malformed("expected `e <src> <dst> <label>`"))?;
                let dst: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| malformed("expected `e <src> <dst> <label>`"))?;
                let label =
                    it.next().ok_or_else(|| malformed("expected `e <src> <dst> <label>`"))?;
                edges.push((src, dst, vocab.intern(label), lineno));
            }
            other => return Err(malformed(&format!("unknown record kind `{other}`"))),
        }
    }
    let mut b = GraphBuilder::new(vocab);
    b.reserve(nodes.len(), edges.len());
    for (i, slot) in nodes.into_iter().enumerate() {
        let l = slot.ok_or_else(|| {
            ParseError::Malformed(
                implied_at[i],
                format!("node id {i} never declared (implied by this line's node id)"),
            )
        })?;
        b.add_node(l);
    }
    for (s, d, l, lineno) in edges {
        let n = b.node_count() as u32;
        if s >= n || d >= n {
            return Err(ParseError::Malformed(
                lineno,
                format!("edge ({s},{d}) references undeclared node"),
            ));
        }
        b.add_edge(NodeId(s), NodeId(d), l);
    }
    Ok(b.build())
}

/// Writes `g` in the text format.
pub fn write_graph(g: &Graph, mut w: impl Write) -> std::io::Result<()> {
    let mut out = String::new();
    for v in g.nodes() {
        let label = g.vocab().resolve(g.node_label(v));
        writeln!(out, "v {} {}", v.0, label).unwrap();
    }
    for v in g.nodes() {
        for e in g.out_edges(v) {
            let label = g.vocab().resolve(e.label);
            writeln!(out, "e {} {} {}", v.0, e.node.0, label).unwrap();
        }
    }
    w.write_all(out.as_bytes())
}

/// Shared binary-codec primitives: LEB128 varints, length-prefixed
/// strings, magic headers and the [`BinError`](bin::BinError) type.
/// Used by this module, `gpar-pattern`'s pattern codec and `gpar-serve`'s
/// catalog codec.
pub mod bin {
    use std::io::{Read, Write};

    /// Errors produced by the binary codecs.
    #[derive(Debug)]
    pub enum BinError {
        /// Underlying I/O failure (including unexpected EOF).
        Io(std::io::Error),
        /// The stream does not start with the expected magic.
        BadMagic {
            /// The magic the codec expected.
            expected: &'static [u8; 8],
            /// What the stream contained.
            found: [u8; 8],
        },
        /// Structurally invalid content (out-of-range index, bad UTF-8,
        /// oversized varint, …).
        Malformed(String),
    }

    impl std::fmt::Display for BinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                BinError::Io(e) => write!(f, "i/o error: {e}"),
                BinError::BadMagic { expected, found } => write!(
                    f,
                    "bad magic: expected {:?}, found {:?}",
                    String::from_utf8_lossy(&expected[..]),
                    String::from_utf8_lossy(&found[..]),
                ),
                BinError::Malformed(msg) => write!(f, "malformed binary data: {msg}"),
            }
        }
    }

    impl std::error::Error for BinError {}

    impl From<std::io::Error> for BinError {
        fn from(e: std::io::Error) -> Self {
            BinError::Io(e)
        }
    }

    /// Writes the 8-byte magic header.
    pub fn write_magic(w: &mut impl Write, magic: &'static [u8; 8]) -> Result<(), BinError> {
        w.write_all(magic)?;
        Ok(())
    }

    /// Reads and checks the 8-byte magic header.
    pub fn read_magic(r: &mut impl Read, magic: &'static [u8; 8]) -> Result<(), BinError> {
        let mut found = [0u8; 8];
        r.read_exact(&mut found)?;
        if &found != magic {
            return Err(BinError::BadMagic { expected: magic, found });
        }
        Ok(())
    }

    /// Writes `v` as an LEB128 varint (1–10 bytes).
    pub fn write_uvarint(w: &mut impl Write, mut v: u64) -> Result<(), BinError> {
        let mut buf = [0u8; 10];
        let mut i = 0;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf[i] = byte;
                i += 1;
                break;
            }
            buf[i] = byte | 0x80;
            i += 1;
        }
        w.write_all(&buf[..i])?;
        Ok(())
    }

    /// Reads an LEB128 varint, rejecting encodings longer than 10 bytes.
    pub fn read_uvarint(r: &mut impl Read) -> Result<u64, BinError> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            r.read_exact(&mut byte)?;
            let b = byte[0];
            if shift == 63 && b > 1 {
                return Err(BinError::Malformed("varint overflows u64".into()));
            }
            out |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(BinError::Malformed("varint longer than 10 bytes".into()));
            }
        }
    }

    /// Reads a varint and narrows it to `usize`, checking `limit` (a
    /// sanity bound that keeps corrupted counts from causing huge
    /// allocations).
    pub fn read_count(r: &mut impl Read, limit: u64, what: &str) -> Result<usize, BinError> {
        let v = read_uvarint(r)?;
        if v > limit {
            return Err(BinError::Malformed(format!(
                "{what} count {v} exceeds sanity limit {limit}"
            )));
        }
        Ok(v as usize)
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(w: &mut impl Write, s: &str) -> Result<(), BinError> {
        write_uvarint(w, s.len() as u64)?;
        w.write_all(s.as_bytes())?;
        Ok(())
    }

    /// Reads a length-prefixed UTF-8 string (≤ 16 MiB).
    pub fn read_str(r: &mut impl Read) -> Result<String, BinError> {
        let len = read_count(r, 16 << 20, "string byte")?;
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| BinError::Malformed("string is not UTF-8".into()))
    }

    /// Writes a label table (the distinct strings of `labels`, in order)
    /// and returns nothing; the caller guarantees `labels[i]` is the
    /// string for local label index `i`.
    pub fn write_label_table(
        w: &mut impl Write,
        labels: &[std::sync::Arc<str>],
    ) -> Result<(), BinError> {
        write_uvarint(w, labels.len() as u64)?;
        for l in labels {
            write_str(w, l)?;
        }
        Ok(())
    }

    /// Reads a label table, interning every string into `vocab`; returns
    /// the local-index → [`crate::Label`] mapping.
    pub fn read_label_table(
        r: &mut impl Read,
        vocab: &crate::label::Vocab,
    ) -> Result<Vec<crate::label::Label>, BinError> {
        let n = read_count(r, 1 << 24, "label")?;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push(vocab.intern(&read_str(r)?));
        }
        Ok(out)
    }

    /// Cap on speculative pre-allocation from untrusted counts: a
    /// corrupted count can claim billions of elements, but the stream
    /// backing it would fail long before — so readers reserve at most
    /// this many slots up front and let `Vec` growth handle honest
    /// larger inputs.
    pub const PREALLOC_CAP: usize = 1 << 20;

    /// Accumulates the distinct labels a writer references, assigning
    /// dense local indices; pair with [`write_label_table`]. Shared by
    /// the graph and pattern codecs so the two table layouts cannot
    /// diverge.
    #[derive(Default)]
    pub struct LabelTable {
        strings: Vec<std::sync::Arc<str>>,
        index: rustc_hash::FxHashMap<crate::label::Label, u64>,
    }

    impl LabelTable {
        /// Returns `l`'s local index, assigning the next one (and
        /// resolving its string through `vocab`) on first sight.
        pub fn intern(&mut self, l: crate::label::Label, vocab: &crate::label::Vocab) -> u64 {
            *self.index.entry(l).or_insert_with(|| {
                self.strings.push(vocab.resolve(l));
                (self.strings.len() - 1) as u64
            })
        }

        /// The local index of an already-interned label.
        ///
        /// # Panics
        /// Panics if `l` was never interned (a writer bug).
        pub fn index_of(&self, l: crate::label::Label) -> u64 {
            self.index[&l]
        }

        /// The table strings, in local-index order.
        pub fn strings(&self) -> &[std::sync::Arc<str>] {
            &self.strings
        }
    }
}

use bin::BinError;

/// Magic header of the binary graph format.
pub const GRAPH_MAGIC: &[u8; 8] = b"GPARG01\n";

/// Writes `g` in the compact binary format.
pub fn write_graph_binary(g: &Graph, mut w: impl Write) -> Result<(), BinError> {
    let w = &mut w;
    bin::write_magic(w, GRAPH_MAGIC)?;
    let mut table = bin::LabelTable::default();
    for v in g.nodes() {
        table.intern(g.node_label(v), g.vocab());
    }
    for v in g.nodes() {
        for e in g.out_edges(v) {
            table.intern(e.label, g.vocab());
        }
    }
    bin::write_label_table(w, table.strings())?;
    bin::write_uvarint(w, g.node_count() as u64)?;
    for v in g.nodes() {
        bin::write_uvarint(w, table.index_of(g.node_label(v)))?;
    }
    for v in g.nodes() {
        let out = g.out_edges(v);
        bin::write_uvarint(w, out.len() as u64)?;
        for e in out {
            bin::write_uvarint(w, table.index_of(e.label))?;
            bin::write_uvarint(w, e.node.0 as u64)?;
        }
    }
    Ok(())
}

/// Reads a graph in the compact binary format, interning labels into
/// `vocab`.
pub fn read_graph_binary(mut r: impl Read, vocab: Arc<Vocab>) -> Result<Graph, BinError> {
    let r = &mut r;
    bin::read_magic(r, GRAPH_MAGIC)?;
    let table = bin::read_label_table(r, &vocab)?;
    let label_at = |i: usize| -> Result<Label, BinError> {
        table
            .get(i)
            .copied()
            .ok_or_else(|| BinError::Malformed(format!("label index {i} out of range")))
    };
    let n_nodes = bin::read_count(r, u32::MAX as u64, "node")?;
    let mut b = GraphBuilder::new(vocab);
    // Reserve from the untrusted count only up to a cap: a corrupted
    // 20-byte stream may claim u32::MAX nodes, and pre-allocating that
    // would abort before the EOF error surfaces.
    b.reserve(n_nodes.min(bin::PREALLOC_CAP), 0);
    for _ in 0..n_nodes {
        let li = bin::read_count(r, 1 << 24, "label index")?;
        b.add_node(label_at(li)?);
    }
    for v in 0..n_nodes {
        let deg = bin::read_count(r, u32::MAX as u64, "edge")?;
        for _ in 0..deg {
            let li = bin::read_count(r, 1 << 24, "label index")?;
            let dst = bin::read_uvarint(r)?;
            if dst >= n_nodes as u64 {
                return Err(BinError::Malformed(format!(
                    "edge ({v},{dst}) references node out of range (|V| = {n_nodes})"
                )));
            }
            b.add_edge(NodeId(v as u32), NodeId(dst as u32), label_at(li)?);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure() {
        let text = "\
# a tiny graph
v 0 cust
v 1 shop
e 0 1 visit
v 2 cust
e 2 1 visit
e 0 2 friend
";
        let vocab = Vocab::new();
        let g = read_graph(text.as_bytes(), vocab).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);

        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice(), Vocab::new()).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let visit = g2.vocab().get("visit").unwrap();
        assert!(g2.has_edge(NodeId(0), NodeId(1), visit));
    }

    #[test]
    fn rejects_duplicate_and_dangling() {
        let vocab = Vocab::new();
        let err = read_graph("v 0 a\nv 0 b\n".as_bytes(), vocab.clone()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(2, _)));
        let err = read_graph("v 0 a\ne 0 5 x\n".as_bytes(), vocab.clone()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_, _)));
        let err = read_graph("v 1 a\n".as_bytes(), vocab).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_, _))); // id 0 missing
    }

    #[test]
    fn dangling_edge_reports_its_own_line() {
        let text = "v 0 a\nv 1 b\n# comment\ne 0 1 x\ne 0 7 x\n";
        let err = read_graph(text.as_bytes(), Vocab::new()).unwrap_err();
        match err {
            ParseError::Malformed(line, msg) => {
                assert_eq!(line, 5, "{msg}");
                assert!(msg.contains("(0,7)"), "{msg}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn undeclared_node_reports_the_implying_line() {
        // `v 3` on line 2 implies ids 0..3 exist; id 1 is filled on line 3,
        // ids 0 and 2 never are — the error must point at line 2.
        let text = "# heading\nv 3 a\nv 1 b\n";
        let err = read_graph(text.as_bytes(), Vocab::new()).unwrap_err();
        match err {
            ParseError::Malformed(line, msg) => {
                assert_eq!(line, 2, "{msg}");
                assert!(msg.contains("never declared"), "{msg}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_record() {
        let err = read_graph("x 1 2\n".as_bytes(), Vocab::new()).unwrap_err();
        assert!(err.to_string().contains("unknown record"));
    }

    #[test]
    fn binary_roundtrip_preserves_structure_and_labels() {
        let text = "v 0 cust\nv 1 shop\nv 2 cust\ne 0 1 visit\ne 2 1 visit\ne 0 2 friend\n";
        let g = read_graph(text.as_bytes(), Vocab::new()).unwrap();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        // Well under the text size for this shape, and self-contained.
        assert!(buf.len() < text.len(), "binary ({}) should beat text ({})", buf.len(), text.len());
        let fresh = Vocab::new();
        let g2 = read_graph_binary(buf.as_slice(), fresh.clone()).unwrap();
        assert_eq!(g2.node_count(), 3);
        assert_eq!(g2.edge_count(), 3);
        let visit = fresh.get("visit").unwrap();
        let friend = fresh.get("friend").unwrap();
        assert!(g2.has_edge(NodeId(0), NodeId(1), visit));
        assert!(g2.has_edge(NodeId(2), NodeId(1), visit));
        assert!(g2.has_edge(NodeId(0), NodeId(2), friend));
        assert_eq!(fresh.resolve(g2.node_label(NodeId(1))).as_ref(), "shop");
    }

    #[test]
    fn binary_rejects_bad_magic_truncation_and_ranges() {
        let g = read_graph("v 0 a\nv 1 b\ne 0 1 x\n".as_bytes(), Vocab::new()).unwrap();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            read_graph_binary(bad.as_slice(), Vocab::new()).unwrap_err(),
            BinError::BadMagic { .. }
        ));

        // Truncation at every prefix must error, never panic.
        for cut in 0..buf.len() {
            assert!(read_graph_binary(&buf[..cut], Vocab::new()).is_err(), "cut {cut}");
        }

        // Out-of-range destination node: the stream ends with node 0's
        // single edge (label-idx, dst) followed by node 1's degree 0 —
        // corrupt the dst varint (second-to-last byte).
        let mut oor = buf.clone();
        let n = oor.len();
        oor[n - 2] = 0x55; // dst = 85 with |V| = 2
        assert!(matches!(
            read_graph_binary(oor.as_slice(), Vocab::new()).unwrap_err(),
            BinError::Malformed(_)
        ));
    }

    #[test]
    fn varints_roundtrip_and_reject_overflow() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            bin::write_uvarint(&mut buf, v).unwrap();
            assert_eq!(bin::read_uvarint(&mut buf.as_slice()).unwrap(), v);
        }
        // 11-byte encoding must be rejected.
        let long = [0x80u8; 11];
        assert!(bin::read_uvarint(&mut long.as_slice()).is_err());
        // 10-byte encoding with overflow bits set must be rejected.
        let mut of = [0xffu8; 10];
        of[9] = 0x02;
        assert!(bin::read_uvarint(&mut of.as_slice()).is_err());
    }
}
