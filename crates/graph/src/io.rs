//! A minimal line-oriented text format for labeled graphs.
//!
//! ```text
//! # comment / blank lines ignored
//! v <id> <label>
//! e <src> <dst> <label>
//! ```
//!
//! Node ids must be dense `0..n` but may appear in any order. Labels are
//! whitespace-free tokens (use `_` in place of spaces).

use crate::graph::{Graph, NodeId};
use crate::label::Vocab;
use crate::GraphBuilder;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

/// Errors produced while parsing the text graph format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Malformed(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads a graph in the text format from `reader`, interning labels into
/// `vocab`.
pub fn read_graph(reader: impl Read, vocab: Arc<Vocab>) -> Result<Graph, ParseError> {
    let mut nodes: Vec<Option<crate::Label>> = Vec::new();
    let mut edges: Vec<(u32, u32, crate::Label)> = Vec::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let kind = it.next().unwrap();
        let malformed = |msg: &str| ParseError::Malformed(lineno, msg.to_string());
        match kind {
            "v" => {
                let id: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| malformed("expected `v <id> <label>`"))?;
                let label = it
                    .next()
                    .ok_or_else(|| malformed("expected `v <id> <label>`"))?;
                if id >= nodes.len() {
                    nodes.resize(id + 1, None);
                }
                if nodes[id].is_some() {
                    return Err(malformed(&format!("duplicate node id {id}")));
                }
                nodes[id] = Some(vocab.intern(label));
            }
            "e" => {
                let src: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| malformed("expected `e <src> <dst> <label>`"))?;
                let dst: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| malformed("expected `e <src> <dst> <label>`"))?;
                let label = it
                    .next()
                    .ok_or_else(|| malformed("expected `e <src> <dst> <label>`"))?;
                edges.push((src, dst, vocab.intern(label)));
            }
            other => return Err(malformed(&format!("unknown record kind `{other}`"))),
        }
    }
    let mut b = GraphBuilder::new(vocab);
    b.reserve(nodes.len(), edges.len());
    for (i, l) in nodes.into_iter().enumerate() {
        let l = l.ok_or_else(|| ParseError::Malformed(0, format!("node id {i} never declared")))?;
        b.add_node(l);
    }
    for (s, d, l) in edges {
        let n = b.node_count() as u32;
        if s >= n || d >= n {
            return Err(ParseError::Malformed(
                0,
                format!("edge ({s},{d}) references undeclared node"),
            ));
        }
        b.add_edge(NodeId(s), NodeId(d), l);
    }
    Ok(b.build())
}

/// Writes `g` in the text format.
pub fn write_graph(g: &Graph, mut w: impl Write) -> std::io::Result<()> {
    let mut out = String::new();
    for v in g.nodes() {
        let label = g.vocab().resolve(g.node_label(v));
        writeln!(out, "v {} {}", v.0, label).unwrap();
    }
    for v in g.nodes() {
        for e in g.out_edges(v) {
            let label = g.vocab().resolve(e.label);
            writeln!(out, "e {} {} {}", v.0, e.node.0, label).unwrap();
        }
    }
    w.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure() {
        let text = "\
# a tiny graph
v 0 cust
v 1 shop
e 0 1 visit
v 2 cust
e 2 1 visit
e 0 2 friend
";
        let vocab = Vocab::new();
        let g = read_graph(text.as_bytes(), vocab).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);

        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice(), Vocab::new()).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let visit = g2.vocab().get("visit").unwrap();
        assert!(g2.has_edge(NodeId(0), NodeId(1), visit));
    }

    #[test]
    fn rejects_duplicate_and_dangling() {
        let vocab = Vocab::new();
        let err = read_graph("v 0 a\nv 0 b\n".as_bytes(), vocab.clone()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(2, _)));
        let err = read_graph("v 0 a\ne 0 5 x\n".as_bytes(), vocab.clone()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_, _)));
        let err = read_graph("v 1 a\n".as_bytes(), vocab).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(_, _))); // id 0 missing
    }

    #[test]
    fn rejects_unknown_record() {
        let err = read_graph("x 1 2\n".as_bytes(), Vocab::new()).unwrap_err();
        assert!(err.to_string().contains("unknown record"));
    }
}
