//! # gpar — Association Rules with Graph Patterns
//!
//! A from-scratch Rust implementation of **graph-pattern association rules
//! (GPARs)**, reproducing *Fan, Wang, Wu, Xu: "Association Rules with Graph
//! Patterns", PVLDB 8(12), 2015*.
//!
//! A GPAR `R(x, y): Q(x, y) ⇒ q(x, y)` states that whenever the graph
//! pattern `Q` matches around a designated pair `(x, y)` in a social graph,
//! the consequent edge `q(x, y)` likely holds — "`x` is a potential customer
//! of `y`". This facade crate re-exports the whole system:
//!
//! * [`graph`] — labeled directed multigraph substrate,
//! * [`pattern`] — graph patterns, canonical forms, bisimulation,
//! * [`iso`] — subgraph-isomorphism engines (VF2, guided search, …),
//! * [`core`] — GPARs, topological support, LCWA + Bayes-Factor confidence,
//!   diversification objective,
//! * [`exec`] — the shared work-stealing execution runtime (fork-join
//!   task queues with deterministic reduction, pool injector),
//! * [`partition`] — d-neighborhood-preserving graph fragmentation,
//! * [`mine`] — `DMine`, the parallel diversified top-k GPAR miner (DMP),
//! * [`eip`] — `Match`/`Matchc`/`disVF2`, parallel-scalable entity
//!   identification (EIP),
//! * [`datagen`] — seeded social-graph and workload generators,
//! * [`serve`] — the serving subsystem: versioned rule catalogs (binary
//!   codec), candidate indexes, and a concurrent worker-pool query engine
//!   with d-ball caching.
//!
//! ## Quickstart
//!
//! ```
//! use gpar::prelude::*;
//!
//! // Build a tiny social graph: two friends in the same city, one of whom
//! // visits a French restaurant.
//! let vocab = Vocab::new();
//! let mut b = GraphBuilder::new(vocab.clone());
//! let cust = vocab.intern("cust");
//! let rest = vocab.intern("french_restaurant");
//! let x1 = b.add_node(cust);
//! let x2 = b.add_node(cust);
//! let r = b.add_node(rest);
//! let friend = vocab.intern("friend");
//! let visit = vocab.intern("visit");
//! b.add_edge(x1, x2, friend);
//! b.add_edge(x2, x1, friend);
//! b.add_edge(x2, r, visit);
//! b.add_edge(x1, r, visit);
//! let g = b.build();
//!
//! // GPAR: if x and x' are friends and x' visits y, then x visits y.
//! let mut q = PatternBuilder::new(vocab.clone());
//! let px = q.node(cust);
//! let px2 = q.node(cust);
//! let py = q.node(rest);
//! q.edge(px, px2, friend);
//! q.edge(px2, py, visit);
//! let q = q.designate(px, py).build().unwrap();
//! let rule = Gpar::new(q, visit).unwrap();
//!
//! let eval = evaluate(&rule, &g, &EvalOptions::default()).unwrap();
//! assert_eq!(eval.supp_r, 2); // both customers match the full rule
//! ```

pub use gpar_core as core;
pub use gpar_datagen as datagen;
pub use gpar_eip as eip;
pub use gpar_exec as exec;
pub use gpar_graph as graph;
pub use gpar_iso as iso;
pub use gpar_mine as mine;
pub use gpar_partition as partition;
pub use gpar_pattern as pattern;
pub use gpar_serve as serve;

/// Convenient glob-import surface covering the common API.
pub mod prelude {
    pub use gpar_core::{
        diff, evaluate, objective_f, Confidence, EvalOptions, Gpar, GparError, Predicate,
        RuleEvaluation,
    };
    pub use gpar_datagen::{gplus_like, pokec_like, synthetic, SyntheticConfig};
    pub use gpar_eip::{identify, EipAlgorithm, EipConfig, EipResult};
    pub use gpar_graph::{Graph, GraphBuilder, Label, NodeId, Vocab};
    pub use gpar_iso::{EngineKind, Matcher, MatcherConfig};
    pub use gpar_mine::{DMine, DmineConfig, MineOpts, MineResult, MinedRule};
    pub use gpar_partition::{partition_by_centers, Fragment, PartitionStrategy};
    pub use gpar_pattern::{NodeCond, Pattern, PatternBuilder};
    pub use gpar_serve::{RuleCatalog, ServeConfig, ServeEngine, ShardedEngine};
}
