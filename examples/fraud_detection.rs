//! Fake-account detection — rule `R4` of Example 1 / Fig. 1(d) over the
//! paper's graph `G2` (Fig. 2, right).
//!
//! > If account x′ is confirmed fake, both x and x′ like blogs P1…Pk, x
//! > posts blog y1, x′ posts y2, and y1 and y2 contain the same keyword,
//! > then x is likely a fake account.
//!
//! Reproduces Example 5: with k = 2, `supp(R4, G2) = 3` (acct1–acct3).
//!
//! Run with: `cargo run --example fraud_detection`

use gpar::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // G2: accounts, blogs, keywords (Fig. 2 right).
    // ------------------------------------------------------------------
    let vocab = Vocab::new();
    let acct = vocab.intern("acct");
    let blog = vocab.intern("blog");
    let keyword = vocab.intern("keyword");
    let fake = vocab.intern("fake");
    let (post, like, contains, is_a) = (
        vocab.intern("post"),
        vocab.intern("like"),
        vocab.intern("contains"),
        vocab.intern("is_a"),
    );

    let mut b = GraphBuilder::new(vocab.clone());
    let accts: Vec<NodeId> = (0..4).map(|_| b.add_node(acct)).collect();
    let blogs: Vec<NodeId> = (0..7).map(|_| b.add_node(blog)).collect();
    let k1 = b.add_node(keyword); // "claim a prize"
    let k2 = b.add_node(keyword); // "lottery rules"
    let fake_node = b.add_node(fake);

    // acct4 is the confirmed fake account; acct1-acct3 behave like it.
    b.add_edge(accts[3], fake_node, is_a);

    // Posts: acct1 posts p1, acct2 posts p3, acct3 posts p5, acct4 posts p7.
    b.add_edge(accts[0], blogs[0], post);
    b.add_edge(accts[1], blogs[2], post);
    b.add_edge(accts[2], blogs[4], post);
    b.add_edge(accts[3], blogs[6], post);
    // Posted blogs contain the same scam keyword k1.
    for &p in &[blogs[0], blogs[2], blogs[4], blogs[6]] {
        b.add_edge(p, k1, contains);
    }
    // Some unrelated blog contains k2.
    b.add_edge(blogs[1], k2, contains);

    // Shared liked blogs (the P1..Pk, k = 2): all four accounts like
    // p2 and p4.
    for &a in &accts {
        b.add_edge(a, blogs[1], like);
        b.add_edge(a, blogs[3], like);
    }
    let g = b.build();
    println!("G2: {} nodes, {} edges", g.node_count(), g.edge_count());

    // ------------------------------------------------------------------
    // R4(x, y): Q4(x, y) ⇒ is_a(x, fake), with k = 2 liked blogs.
    // ------------------------------------------------------------------
    let mut q = PatternBuilder::new(vocab.clone());
    let x = q.node(acct);
    let x2 = q.node(acct);
    let y = q.node(fake); // value binding: y = fake
    let shared = q.node_copies(blog, 2); // the P1..Pk with C(u)=k=2
    let y1 = q.node(blog);
    let y2 = q.node(blog);
    let kw = q.node(keyword);
    q.edge(x2, y, is_a); // x' is confirmed fake
    q.edge_to_copies(x, &shared, like);
    q.edge_to_copies(x2, &shared, like);
    q.edge(x, y1, post);
    q.edge(x2, y2, post);
    q.edge(y1, kw, contains);
    q.edge(y2, kw, contains);
    let q4 = q.designate(x, y).build().expect("Q4 is valid");
    let r4 = Gpar::new(q4, is_a).expect("R4 is a valid GPAR");
    println!("R4: {r4}");

    // ------------------------------------------------------------------
    // Example 5's numbers: supp(R4, G2) = supp(Q4, G2) = 3.
    // ------------------------------------------------------------------
    let eval = evaluate(&r4, &g, &EvalOptions::default()).expect("evaluation");
    // Note acct4 itself does not match Q4: the pattern needs a *different*
    // confirmed-fake account x' (injectivity of the match).
    println!("Q4(x, G2) = {} suspects (paper: 3, acct1-acct3)", eval.supp_q_ante);
    assert_eq!(eval.supp_q_ante, 3);

    // The suspects: accounts matching Q4 that are not yet confirmed fake.
    let suspects: Vec<NodeId> =
        eval.q_matches.iter().copied().filter(|&a| !g.has_edge(a, fake_node, is_a)).collect();
    println!("suspects flagged: {} accounts", suspects.len());
    assert_eq!(suspects.len(), 3, "acct1, acct2, acct3");

    // EIP view: identify suspicious accounts with Σ = {R4}. Every account
    // matching Q4 is a potential "customer" of the fake label.
    let cfg = EipConfig { eta: 0.0, ..EipConfig::new(EipAlgorithm::Match, 2) };
    let res = identify(&g, std::slice::from_ref(&r4), &cfg).expect("Σ valid");
    println!("Σ(x, G2, 0) = {} accounts flagged via EIP", res.customers.len());
    assert_eq!(res.customers.len(), 3); // the three acct1-acct3 suspects
    println!("\nFraud scenario reproduced. ✓");
}
