//! Identifying potential customers at scale (EIP, §5) — the paper's
//! headline application: given a set Σ of GPARs pertaining to one event,
//! find all users a confident rule flags as potential customers.
//!
//! Generates a Pokec-like graph, builds a Σ of 24 random satisfiable
//! GPARs (the paper's pattern-generator workload), and runs all four
//! algorithm variants, verifying they agree and comparing their cost.
//!
//! Run with: `cargo run --release --example social_marketing`

use gpar::datagen::{generate_rules, RuleGenConfig};
use gpar::prelude::*;
use std::time::Instant;

fn main() {
    let sg = pokec_like(4000, 7);
    println!("graph: {} nodes, {} edges", sg.graph.node_count(), sg.graph.edge_count());

    let pred = sg.schema.predicate("restaurant", 0).expect("restaurant family");
    let rules = generate_rules(
        &sg.graph,
        &pred,
        &RuleGenConfig { count: 24, pattern_nodes: 5, pattern_edges: 8, max_radius: 2, seed: 99 },
    );
    println!("Σ: {} GPARs pertaining to visit(user, restaurant_00), |R| ≈ (5, 8)", rules.len());

    let mut reference: Option<FxHashSetAlias> = None;
    for algo in
        [EipAlgorithm::DisVf2, EipAlgorithm::Matchc, EipAlgorithm::Matchs, EipAlgorithm::Match]
    {
        let cfg = EipConfig { eta: 1.0, ..EipConfig::new(algo, 4) };
        let t0 = Instant::now();
        let res = identify(&sg.graph, &rules, &cfg).expect("valid Σ");
        let elapsed = t0.elapsed();
        println!(
            "{algo:?}: |Σ(x,G,η)| = {} potential customers out of {} candidates in {elapsed:?}",
            res.customers.len(),
            res.candidates,
        );
        match &reference {
            None => reference = Some(res.customers),
            Some(r) => assert_eq!(r, &res.customers, "all variants must agree"),
        }
    }

    // Show a couple of confident rules and what they found.
    let cfg = EipConfig { eta: 1.0, ..EipConfig::new(EipAlgorithm::Match, 4) };
    let res = identify(&sg.graph, &rules, &cfg).unwrap();
    println!("\nmost confident rules:");
    let mut ranked: Vec<(usize, f64)> =
        res.per_rule.iter().enumerate().map(|(i, o)| (i, o.confidence.ranking_value())).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for &(i, conf) in ranked.iter().take(3) {
        let o = &res.per_rule[i];
        println!(
            "  conf={:.3} supp(R)={} |Q(x,G)|={} :: {}",
            conf,
            o.stats.supp_r,
            o.q_matches.len(),
            rules[i]
        );
    }
}

type FxHashSetAlias = gpar::graph::FxHashSet<NodeId>;
