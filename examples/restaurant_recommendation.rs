//! End-to-end recommendation pipeline: *mine* rules on one part of a
//! restaurant-recommendation network, then *apply* them on the rest to
//! find customers to target — the mine-then-identify workflow the paper's
//! introduction motivates (and the train/validate protocol of Exp-2).
//!
//! Run with: `cargo run --release --example restaurant_recommendation`

use gpar::core::{precision, q_stats};
use gpar::prelude::*;

fn main() {
    // Two independently seeded halves of the same distribution: F1 for
    // mining, F2 for validation (the paper splits Pokec the same way).
    let train = pokec_like(2500, 1001);
    let test = pokec_like(2500, 2002);

    let pred = train.schema.predicate("restaurant", 0).expect("restaurant family");
    let qs = q_stats(&train.graph, &pred);
    println!(
        "training graph: {} nodes; predicate visit(user, restaurant_00): {}+ / {}- / {}?",
        train.graph.node_count(),
        qs.supp_q(),
        qs.supp_qbar(),
        qs.unknown
    );

    // ---- mine on F1 ---------------------------------------------------
    let config = DmineConfig {
        k: 6,
        sigma: 5,
        d: 2,
        lambda: 0.25, // lean toward confidence for recommendation quality
        workers: 4,
        max_rounds: 2,
        ..Default::default()
    };
    let mined = DMine::new(config).run(&train.graph, &pred);
    println!("mined {} rules (|Σ| = {}):", mined.top_k.len(), mined.sigma_size);
    for r in &mined.top_k {
        println!("  conf={:.3} supp={} {}", r.conf_value, r.support(), r.rule);
    }
    assert!(!mined.top_k.is_empty(), "mining should discover rules");

    // ---- validate on F2 ------------------------------------------------
    println!("\nvalidation precision on F2 (prec = supp(R,F2)/supp(Q,F2)):");
    let opts = EvalOptions::default();
    let mut best: Option<(f64, &MinedRule)> = None;
    for r in &mined.top_k {
        let p = precision(&r.rule, &test.graph, &opts);
        println!("  prec={p:.3} for {}", r.rule);
        if best.as_ref().is_none_or(|(bp, _)| p > *bp) {
            best = Some((p, r));
        }
    }

    // ---- apply the mined rules on F2 to target customers ---------------
    let sigma: Vec<Gpar> = mined.top_k.iter().map(|r| (*r.rule).clone()).collect();
    let cfg = EipConfig { eta: 1.0, ..EipConfig::new(EipAlgorithm::Match, 4) };
    let res = identify(&test.graph, &sigma, &cfg).expect("Σ is homogeneous");
    println!(
        "\ntargeting: {} potential customers identified on F2 ({} candidates examined)",
        res.customers.len(),
        res.candidates
    );
    let (p, r) = best.expect("at least one rule");
    println!("\nbest rule generalizes with precision {:.1}%:\n  {}", 100.0 * p, r.rule);
}
