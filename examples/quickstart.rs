//! Quickstart: build the paper's graph `G1` (Fig. 2), express rule `R1`
//! of Example 1, and reproduce the support/confidence numbers computed by
//! hand in Examples 3, 5 and 10.
//!
//! Run with: `cargo run --example quickstart`

use gpar::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Build G1: a restaurant recommendation network (Fig. 2, left).
    // ------------------------------------------------------------------
    let vocab = Vocab::new();
    let cust = vocab.intern("cust");
    let city = vocab.intern("city");
    let fr = vocab.intern("french_restaurant");
    let asian = vocab.intern("asian_restaurant");
    let (live_in, friend, like, r#in, visit) = (
        vocab.intern("live_in"),
        vocab.intern("friend"),
        vocab.intern("like"),
        vocab.intern("in"),
        vocab.intern("visit"),
    );

    let mut b = GraphBuilder::new(vocab.clone());
    let custs: Vec<NodeId> = (0..6).map(|_| b.add_node(cust)).collect();
    let ny = b.add_node(city);
    let la = b.add_node(city);
    let le_bernardin = b.add_node(fr);
    let per_se = b.add_node(fr);
    let patina = b.add_node(fr);

    let shared_likes = |b: &mut GraphBuilder, a: NodeId, c: NodeId, town: NodeId| {
        // "3 French restaurants that both like" — the FR³ succinct nodes.
        for _ in 0..3 {
            let r = b.add_node(fr);
            b.add_edge(a, r, like);
            b.add_edge(c, r, like);
            b.add_edge(r, town, r#in);
        }
    };

    // cust1, cust2: New Yorkers, friends, shared tastes, both visited
    // Le Bernardin.
    b.add_edge(custs[0], ny, live_in);
    b.add_edge(custs[1], ny, live_in);
    b.add_edge(custs[0], custs[1], friend);
    b.add_edge(custs[1], custs[0], friend);
    shared_likes(&mut b, custs[0], custs[1], ny);
    b.add_edge(custs[0], le_bernardin, visit);
    b.add_edge(custs[1], le_bernardin, visit);
    b.add_edge(le_bernardin, ny, r#in);

    // cust3: New Yorker, friend of cust2, shares tastes, visited too.
    b.add_edge(custs[2], ny, live_in);
    b.add_edge(custs[1], custs[2], friend);
    b.add_edge(custs[2], custs[1], friend);
    shared_likes(&mut b, custs[1], custs[2], ny);
    b.add_edge(custs[2], le_bernardin, visit);

    // cust4: Angeleno who visits Per se — matches q but not Q1.
    b.add_edge(custs[3], la, live_in);
    b.add_edge(custs[3], per_se, visit);
    b.add_edge(per_se, la, r#in);
    b.add_edge(patina, la, r#in);

    // cust5 & cust6: Angelenos, friends, shared tastes; cust5 visits only
    // an Asian restaurant (the LCWA negative), cust6 visits Patina.
    b.add_edge(custs[4], la, live_in);
    b.add_edge(custs[5], la, live_in);
    b.add_edge(custs[4], custs[5], friend);
    b.add_edge(custs[5], custs[4], friend);
    shared_likes(&mut b, custs[4], custs[5], la);
    let asian1 = b.add_node(asian);
    b.add_edge(custs[4], asian1, visit);
    b.add_edge(asian1, la, r#in);
    b.add_edge(custs[5], patina, visit);

    let g = b.build();
    println!("G1: {} nodes, {} edges", g.node_count(), g.edge_count());

    // ------------------------------------------------------------------
    // 2. Express R1(x, y): Q1(x, y) ⇒ visit(x, y)  (Example 1 / Fig 1a).
    // ------------------------------------------------------------------
    let mut q = PatternBuilder::new(vocab.clone());
    let x = q.node(cust);
    let x2 = q.node(cust);
    let c = q.node(city);
    let y = q.node(fr);
    let shared = q.node_copies(fr, 3); // C(u) = 3: the FR³ annotation
    q.edge(x, x2, friend);
    q.edge(x2, x, friend);
    q.edge(x, c, live_in);
    q.edge(x2, c, live_in);
    q.edge_to_copies(x, &shared, like);
    q.edge_to_copies(x2, &shared, like);
    q.edge_from_copies(&shared, c, r#in);
    q.edge(y, c, r#in);
    q.edge(x2, y, visit);
    let q1 = q.designate(x, y).build().expect("Q1 is a valid pattern");
    let r1 = Gpar::new(q1, visit).expect("R1 is a valid GPAR");
    println!("R1: {r1}");

    // ------------------------------------------------------------------
    // 3. Evaluate — the numbers of Examples 3, 5 and 10.
    // ------------------------------------------------------------------
    let eval = evaluate(&r1, &g, &EvalOptions::default()).expect("evaluation");
    println!("Q1(x, G1)  = {} customers (paper: 4: cust1-cust3, cust5)", eval.supp_q_ante);
    println!("supp(R1)   = {} (paper: 3: cust1-cust3)", eval.supp_r);
    println!("supp(q)    = {} (paper: 5)", eval.supp_q);
    println!("supp(q̄)    = {} (paper: 1: cust5)", eval.supp_qbar);
    println!("supp(Qq̄)   = {} (paper: 1)", eval.supp_q_qbar);
    match eval.confidence {
        Confidence::Value(v) => println!("conf(R1)   = {v} (paper: 3·1/(1·5) = 0.6)"),
        other => println!("conf(R1)   = {other:?}"),
    }

    assert_eq!(eval.supp_q_ante, 4);
    assert_eq!(eval.supp_r, 3);
    assert_eq!(eval.supp_q, 5);
    assert_eq!(eval.supp_qbar, 1);
    assert_eq!(eval.supp_q_qbar, 1);
    assert_eq!(eval.confidence, Confidence::Value(0.6));
    println!("\nAll numbers match the paper. ✓");
}
