//! End-to-end serving demo: mine diversified GPARs once on a generated
//! social graph, export them to a versioned `RuleCatalog`, round-trip the
//! catalog through the compact binary codec (the on-disk artifact a
//! production deployment ships), then stand up a `ServeEngine` and answer
//! a batch of identification queries — checking the serving answers
//! against a direct one-shot EIP evaluation.
//!
//! Run with: `cargo run --release --example serving`

use gpar::datagen::pokec_like;
use gpar::eip::{identify, EipAlgorithm, EipConfig};
use gpar::graph::NodeId;
use gpar::mine::{DMine, DmineConfig};
use gpar::prelude::Gpar;
use gpar::serve::{IdentifyRequest, RuleCatalog, ServeConfig, ServeEngine};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // ---- 1. Mine once -------------------------------------------------
    let sg = pokec_like(800, 0xBEEF);
    let pred = sg.schema.predicate("music", 0).expect("schema has a music family");
    println!("graph: |V| = {}, |E| = {}", sg.graph.node_count(), sg.graph.edge_count());
    let cfg = DmineConfig { k: 5, sigma: 4, d: 2, workers: 2, max_rounds: 2, ..Default::default() };
    let t0 = Instant::now();
    let mined = DMine::new(cfg).run(&sg.graph, &pred);
    println!(
        "mined: |Σ| = {} rules in {:.2?} (top-k = {})",
        mined.sigma.len(),
        t0.elapsed(),
        mined.top_k.len()
    );

    // ---- 2. Export to a catalog and round-trip the binary codec -------
    let catalog = RuleCatalog::from_mine_result(&mined, sg.graph.vocab().clone());
    let path = std::env::temp_dir().join("gpar_serving_demo.catalog");
    catalog.save_path(&path).expect("save catalog");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    let loaded = RuleCatalog::load_path(&path, sg.graph.vocab().clone()).expect("load catalog");
    println!(
        "catalog: {} rules, version {}, {} bytes on disk, round-trip ok",
        loaded.len(),
        loaded.version(),
        bytes
    );

    // ---- 3. Serve ------------------------------------------------------
    let graph = Arc::new(sg.graph.clone());
    let engine = ServeEngine::new(
        graph,
        &loaded,
        ServeConfig { workers: 4, eta: 0.5, d: Some(2), ..Default::default() },
    );

    // First query warms the predicate (full evaluation, exact global
    // confidences — identical to EIP's assembly).
    let t0 = Instant::now();
    let full = engine.identify(pred, None).expect("serve full query");
    println!(
        "serve: warm-up query -> {} potential customers in {:.2?}",
        full.customers.len(),
        t0.elapsed()
    );

    // A batch of subset queries over a hot candidate set.
    let hot: Vec<NodeId> = full.customers.iter().copied().take(24).collect();
    let reqs: Vec<IdentifyRequest> = (0..48)
        .map(|i| IdentifyRequest {
            predicate: pred,
            candidates: Some(hot[(i * 5) % hot.len().max(1)..].iter().copied().take(6).collect()),
            opts: Default::default(),
        })
        .collect();
    let t0 = Instant::now();
    let answers = engine.identify_batch(reqs);
    let elapsed = t0.elapsed();
    let answered = answers.iter().filter(|a| a.is_ok()).count();
    let stats = engine.stats();
    println!(
        "serve: {answered} batched queries in {:.2?} ({:.0} QPS), d-ball cache hit rate {:.0}%",
        elapsed,
        answered as f64 / elapsed.as_secs_f64(),
        stats.cache.hit_rate() * 100.0
    );

    // Top rules by confidence on the serving graph.
    println!("top rules:");
    for info in engine.top_rules(pred, 3).expect("top_rules") {
        println!(
            "  conf {:>8.3}  supp {:>4}  active {}  {}",
            info.confidence.ranking_value(),
            info.stats.supp_r,
            info.active,
            info.rule
        );
    }

    // ---- 4. Check against direct EIP -----------------------------------
    let sigma: Vec<Gpar> = loaded.rules_for(&pred).iter().map(|e| (*e.rule).clone()).collect();
    let eip = identify(
        &sg.graph,
        &sigma,
        &EipConfig { eta: 0.5, d: Some(2), ..EipConfig::new(EipAlgorithm::Match, 4) },
    )
    .expect("direct EIP");
    let mut expect: Vec<NodeId> = eip.customers.iter().copied().collect();
    expect.sort_unstable();
    assert_eq!(full.customers, expect, "serving answer must equal direct EIP evaluation");
    println!("check: serve answer equals direct EIP evaluation ({} customers) ✓", expect.len());

    let _ = std::fs::remove_file(&path);
}
