//! Diversified GPAR discovery on a Pokec-like social network — the
//! workload of Exp-1/Exp-2 and the case study of Fig. 5(g).
//!
//! Mines diversified top-k rules for a `like_music` predicate with DMine,
//! prints them next to the frequency-only patterns a GRAMI-style miner
//! produces, illustrating the paper's qualitative claim: frequent
//! patterns "reveal little insight about entity associations", while
//! GPARs surface who influences whom.
//!
//! Run with: `cargo run --release --example rule_discovery`

use gpar::mine::frequent::{FsgConfig, FsgMiner};
use gpar::prelude::*;

fn main() {
    let sg = pokec_like(3000, 42);
    println!(
        "Pokec-like graph: {} nodes, {} edges, {} labels",
        sg.graph.node_count(),
        sg.graph.edge_count(),
        sg.graph.vocab().len()
    );

    // The event of interest: q(x, y) = like_music(user, music_00).
    let pred = sg.schema.predicate("music", 0).expect("music family exists");
    let stats = gpar::core::q_stats(&sg.graph, &pred);
    println!(
        "predicate like_music(user, music_00): {} positives, {} negatives, {} unknown",
        stats.supp_q(),
        stats.supp_qbar(),
        stats.unknown
    );

    // ---- DMine: diversified top-k GPARs ------------------------------
    let config = DmineConfig {
        k: 6,
        sigma: 8,
        d: 2,
        lambda: 0.5,
        workers: 4,
        max_rounds: 2,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let result = DMine::new(config).run(&sg.graph, &pred);
    println!(
        "\nDMine: {} rounds, |Σ| = {}, {} candidates generated, F(Lk) = {:.3}, {:?}",
        result.rounds_run,
        result.sigma_size,
        result.candidates_generated,
        result.objective,
        t0.elapsed()
    );
    println!("top-{} diversified GPARs:", result.top_k.len());
    for (i, r) in result.top_k.iter().enumerate() {
        println!("  #{:<2} conf={:.3} supp={:<4} {}", i + 1, r.conf_value, r.support(), r.rule);
    }

    // ---- GRAMI-style frequency-only mining (the contrast) ------------
    let fsg = FsgMiner::new(FsgConfig { sigma: 400, max_edges: 2, ..Default::default() });
    let freq = fsg.mine(&sg.graph);
    println!("\nGRAMI-style frequent patterns (no designated entity, no confidence):");
    for (p, s) in freq.patterns.iter().take(5) {
        println!("  MNI={s:<6} {p}");
    }
    println!(
        "\nNote how the frequent patterns are generic hub shapes, while the \
         GPARs above\nname the social context (follows/hobby edges) under \
         which users adopt music_00."
    );
}
