//! `cargo xtask lint` — the workspace invariant linter.
//!
//! A deliberately dependency-free (no `syn`, no regex) line/token-based
//! checker for conventions the compiler cannot enforce:
//!
//! * **std-sync** — `std::sync::{Mutex, RwLock, Condvar}` are forbidden
//!   outside `shims/`: production code goes through the `parking_lot`
//!   shim so the `model` feature can swap in `gpar-model`'s instrumented
//!   primitives (and so nothing poisons).
//! * **wall-clock** — `Instant::now()` / `SystemTime` are forbidden
//!   outside `crates/obs` (and the benchmark harnesses): scheduling
//!   decisions take their time from `gpar_obs::Ts`, whose `obs-off`
//!   story and monotonic entry point (`Ts::monotonic_now`) are audited
//!   in one place.
//! * **safety-comment** — every `unsafe {` block and `unsafe impl`
//!   carries a `// SAFETY:` justification on it or in the contiguous
//!   comment block above it.
//! * **ordering-comment** — every non-`SeqCst` atomic ordering
//!   (`Relaxed`, `Acquire`, `Release`, `AcqRel`) carries an
//!   `// ordering:` justification the same way. The model checker
//!   explores interleavings, not weak memory — these comments are where
//!   the ordering argument lives.
//! * **hash-iter** — in the deterministic pipelines (`crates/mine`,
//!   `crates/eip`, `crates/exec`), iterating a `HashMap`/`HashSet`
//!   (incl. the `Fx` variants) directly into a collected/extended
//!   result is flagged unless a `// det:` comment justifies why the
//!   nondeterministic order cannot leak into output.
//!
//! Test code is exempt: `tests/`, `benches/`, `examples/` trees and the
//! conventional trailing `#[cfg(test)] mod …` of a source file.
//!
//! A violation can be suppressed with `// lint: allow(<rule>)` on the
//! line or the comment block above it. Suppressions are reported, and
//! the expectation (checked in review, not by the tool) is that none
//! exist outside `shims/`.

use std::path::{Path, PathBuf};

const RULE_STD_SYNC: &str = "std-sync";
const RULE_WALL_CLOCK: &str = "wall-clock";
const RULE_SAFETY: &str = "safety-comment";
const RULE_ORDERING: &str = "ordering-comment";
const RULE_HASH_ITER: &str = "hash-iter";

struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

struct Suppression {
    file: PathBuf,
    line: usize,
    rule: String,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") | None => {}
        Some(other) => {
            eprintln!("unknown xtask `{other}` (available: lint)");
            std::process::exit(2);
        }
    }

    // The linter does not lint itself: its source is made of the very
    // tokens it searches for.
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "shims", "src"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut suppressions = Vec::new();
    for file in &files {
        lint_file(&root, file, &mut violations, &mut suppressions);
    }

    for s in &suppressions {
        let rel = s.file.strip_prefix(&root).unwrap_or(&s.file);
        println!("note: {}:{}: suppressed [{}]", rel.display(), s.line, s.rule);
    }
    let outside_shims =
        suppressions.iter().filter(|s| !s.file.starts_with(root.join("shims"))).count();
    if outside_shims > 0 {
        println!("note: {outside_shims} suppression(s) outside shims/ — keep this at zero");
    }

    if violations.is_empty() {
        println!(
            "xtask lint: ok ({} files, {} suppression(s), 0 violations)",
            files.len(),
            suppressions.len()
        );
        return;
    }
    for v in &violations {
        let rel = v.file.strip_prefix(&root).unwrap_or(&v.file);
        println!("{}:{}: [{}] {}", rel.display(), v.line, v.rule, v.message);
    }
    println!("xtask lint: {} violation(s)", violations.len());
    std::process::exit(1);
}

fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("cwd"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Which rule scopes apply to a file (workspace-relative path logic).
struct Scope {
    std_sync: bool,
    wall_clock: bool,
    hash_iter: bool,
}

fn scope_of(root: &Path, file: &Path) -> Option<Scope> {
    let rel = file.strip_prefix(root).ok()?;
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned());
    let top = parts.next()?;
    let second = parts.next().unwrap_or_default();
    // Integration tests, benches and examples are exempt from everything.
    let rel_str = rel.to_string_lossy();
    if rel_str.contains("/tests/")
        || rel_str.contains("/benches/")
        || rel_str.contains("/examples/")
    {
        return None;
    }
    let in_crates = top == "crates";
    Some(Scope {
        std_sync: in_crates || top == "src",
        wall_clock: in_crates && second != "obs" && second != "bench",
        hash_iter: in_crates && matches!(second.as_str(), "mine" | "eip" | "exec"),
    })
}

fn lint_file(
    root: &Path,
    file: &Path,
    violations: &mut Vec<Violation>,
    suppressions: &mut Vec<Suppression>,
) {
    let Some(scope) = scope_of(root, file) else { return };
    let Ok(text) = std::fs::read_to_string(file) else { return };
    let lines: Vec<&str> = text.lines().collect();
    let code: Vec<String> = lines.iter().map(|l| strip_comment(l)).collect();
    let test_tail = cfg_test_tail(&lines);
    let hash_idents = if scope.hash_iter { hash_typed_idents(&code) } else { Vec::new() };

    let mut push =
        |violations: &mut Vec<Violation>, idx: usize, rule: &'static str, msg: String| {
            if suppressed(&lines, idx, rule) {
                suppressions.push(Suppression {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    rule: rule.to_string(),
                });
            } else {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: idx + 1,
                    rule,
                    message: msg,
                });
            }
        };

    for (idx, _) in lines.iter().enumerate() {
        if idx >= test_tail {
            break;
        }
        let code_line = code[idx].as_str();
        if code_line.trim().is_empty() {
            continue;
        }

        if scope.std_sync {
            let names_primitive =
                ["Mutex", "RwLock", "Condvar"].iter().any(|p| contains_word(code_line, p));
            let direct = code_line.contains("std::sync::Mutex")
                || code_line.contains("std::sync::RwLock")
                || code_line.contains("std::sync::Condvar");
            let via_use = code_line.trim_start().starts_with("use ")
                && code_line.contains("std::sync::")
                && !code_line.contains("std::sync::atomic")
                && !code_line.contains("std::sync::mpsc")
                && names_primitive;
            if direct || via_use {
                push(
                    violations,
                    idx,
                    RULE_STD_SYNC,
                    "std::sync lock primitive outside shims/ — use the parking_lot shim \
                     (non-poisoning, model-checkable)"
                        .into(),
                );
            }
        }

        if scope.wall_clock
            && (code_line.contains("Instant::now") || contains_word(code_line, "SystemTime"))
        {
            push(
                violations,
                idx,
                RULE_WALL_CLOCK,
                "raw wall-clock read outside crates/obs — use gpar_obs::Ts \
                 (Ts::now / Ts::monotonic_now)"
                    .into(),
            );
        }

        // SAFETY / ordering annotations apply to every scoped file.
        let is_unsafe_site = code_line.contains("unsafe {") || code_line.contains("unsafe impl");
        if is_unsafe_site && !annotated(&lines, idx, "SAFETY:") {
            push(
                violations,
                idx,
                RULE_SAFETY,
                "unsafe block/impl without a `// SAFETY:` justification".into(),
            );
        }

        let weak_ordering =
            ["Ordering::Relaxed", "Ordering::Acquire", "Ordering::Release", "Ordering::AcqRel"]
                .iter()
                .any(|o| code_line.contains(o));
        if weak_ordering
            && !code_line.trim_start().starts_with("use ")
            && !annotated(&lines, idx, "ordering:")
        {
            push(
                violations,
                idx,
                RULE_ORDERING,
                "non-SeqCst atomic ordering without a `// ordering:` justification \
                 (the model checker explores interleavings, not weak memory — \
                 argue the ordering here)"
                    .into(),
            );
        }

        if scope.hash_iter && !hash_idents.is_empty() {
            let feeds_collection = code_line.contains("collect")
                || code_line.contains(".extend(")
                || code_line.contains("from_iter");
            if feeds_collection {
                for ident in &hash_idents {
                    let hit = [".iter()", ".keys()", ".values()", ".into_iter()", ".drain()"]
                        .iter()
                        .any(|acc| code_line.contains(&format!("{ident}{acc}")));
                    if hit && !annotated(&lines, idx, "det:") {
                        push(
                            violations,
                            idx,
                            RULE_HASH_ITER,
                            format!(
                                "`{ident}` is hash-keyed: its iteration order feeds a \
                                 collected result — sort it, or justify with `// det:`"
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }
}

/// The comment-stripped code portion of a line (tracks string/char
/// literals so `"//"` inside a string survives).
fn strip_comment(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            if b == b'\\' {
                i += 1;
            } else if b == b'"' {
                in_str = false;
            }
        } else if b == b'"' {
            in_str = true;
        } else if b == b'\'' {
            // Char literal like '"' or '\\' — skip its body so a quote
            // inside does not open a "string". Lifetimes (`'a`, `'static`)
            // have no closing quote within a token and fall through.
            if i + 2 < bytes.len()
                && bytes[i + 1] == b'\\'
                && bytes[i + 3..].first() == Some(&b'\'')
            {
                i += 3;
            } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                i += 2;
            }
        } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            return line[..i].to_string();
        }
        i += 1;
    }
    line.to_string()
}

/// Whether `word` appears delimited by non-identifier characters.
fn contains_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !line.as_bytes()[at - 1].is_ascii_alphanumeric() && line.as_bytes()[at - 1] != b'_';
        let after = at + word.len();
        let after_ok = after >= line.len()
            || !line.as_bytes()[after].is_ascii_alphanumeric() && line.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Index of the first line of the conventional trailing test module
/// (`#[cfg(test)]` + `mod …`), or `lines.len()` if there is none.
fn cfg_test_tail(lines: &[&str]) -> usize {
    for (idx, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        if t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test") {
            // Confirm a module (not a single test fn) follows within a
            // few attribute lines.
            for follow in lines.iter().skip(idx + 1).take(4) {
                let f = follow.trim_start();
                if f.starts_with("mod ") || f.starts_with("pub mod ") {
                    return idx;
                }
                if !f.starts_with("#[") && !f.is_empty() {
                    break;
                }
            }
        }
    }
    lines.len()
}

/// Whether line `idx`, an earlier line of the same statement, or the
/// contiguous comment block above the statement contains `marker`.
///
/// A multi-line call like `compare_exchange(a, b, Ordering::…,` puts the
/// flagged token several lines below the statement head, so the walk
/// continues upward through continuation lines (ones whose predecessor
/// does not end a statement) until it crosses a `;`/`{`/`}` boundary.
fn annotated(lines: &[&str], idx: usize, marker: &str) -> bool {
    if lines[idx].contains(marker) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") {
            if t.contains(marker) {
                return true;
            }
        } else if t.starts_with("#[") || t.is_empty() {
            // Attributes between the comment block and the site are fine.
            continue;
        } else {
            // A code line: if it closes a statement, the comment block
            // search ends here; otherwise it is a continuation (or the
            // head) of the flagged statement — keep walking.
            let code = strip_comment(lines[i]);
            let tail = code.trim_end();
            if tail.ends_with(';') || tail.ends_with('{') || tail.ends_with('}') {
                return false;
            }
        }
    }
    false
}

/// Whether line `idx` (or its comment block) carries
/// `// lint: allow(<rule>)`.
fn suppressed(lines: &[&str], idx: usize, rule: &str) -> bool {
    annotated(lines, idx, &format!("lint: allow({rule})"))
}

/// Identifiers declared with a hash-map/set type in this file (field,
/// binding, or parameter position) — the receivers the hash-iter rule
/// watches.
fn hash_typed_idents(code: &[String]) -> Vec<String> {
    let mut idents = Vec::new();
    for line in code {
        for ty in ["FxHashMap", "FxHashSet", "HashMap", "HashSet"] {
            let mut search = 0;
            while let Some(pos) = line[search..].find(ty) {
                let at = search + pos;
                let before = line[..at].trim_end();
                // `name: FxHashMap<…>` (fields, params, typed lets).
                if let Some(name) =
                    before.strip_suffix(':').map(str::trim_end).and_then(ident_suffix)
                {
                    idents.push(name);
                }
                // `let name = FxHashMap::…`.
                if line[at..].starts_with(&format!("{ty}::")) {
                    if let Some(name) =
                        before.strip_suffix('=').map(str::trim_end).and_then(ident_suffix)
                    {
                        idents.push(name);
                    }
                }
                search = at + ty.len();
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// The trailing identifier of `s`, if any (e.g. `let mut seen` → `seen`).
fn ident_suffix(s: &str) -> Option<String> {
    let end = s.len();
    let start = s.rfind(|c: char| !c.is_ascii_alphanumeric() && c != '_').map_or(0, |p| p + 1);
    if start >= end {
        return None;
    }
    let cand = &s[start..end];
    if cand.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_') {
        Some(cand.to_string())
    } else {
        None
    }
}
